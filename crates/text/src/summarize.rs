//! Extractive summarization: pick the sentences closest to the document
//! centroid (a classic TF-IDF centroid summarizer).
//!
//! The qual crate uses this to condense long interview transcripts into
//! memo-sized digests; the corpus tooling uses it to skim abstracts.

use crate::tfidf::{cosine_similarity, TfIdf};
use crate::tokenize::{sentences, tokenize};
use crate::{Result, TextError};

/// Summarize free text by extracting the `k` sentences most similar to the
/// whole-document TF-IDF centroid, returned in original order.
///
/// Deterministic; returns fewer sentences when the text is short. Errors
/// on text with no sentences.
pub fn summarize(text: &str, k: usize) -> Result<Vec<String>> {
    if k == 0 {
        return Err(TextError::InvalidParameter("k must be >= 1"));
    }
    let sents = sentences(text);
    if sents.is_empty() {
        return Err(TextError::EmptyInput);
    }
    if sents.len() <= k {
        return Ok(sents);
    }
    let docs: Vec<Vec<String>> = sents.iter().map(|s| tokenize(s)).collect();
    let model = TfIdf::fit(&docs)?;
    // Document centroid: transform of all tokens pooled.
    let pooled: Vec<String> = docs.iter().flatten().cloned().collect();
    let centroid = model.transform(&pooled);
    let mut scored: Vec<(usize, f64)> = docs
        .iter()
        .enumerate()
        .map(|(i, d)| (i, cosine_similarity(&model.transform(d), &centroid)))
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    let mut chosen: Vec<usize> = scored.iter().take(k).map(|&(i, _)| i).collect();
    chosen.sort_unstable();
    Ok(chosen.into_iter().map(|i| sents[i].clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEXT: &str = "The cooperative maintains the wireless network. \
        Volunteers repair radios and climb towers for the network. \
        The network cooperative collects monthly dues from member households. \
        Yesterday it rained heavily. \
        Dues pay for the backhaul connection of the cooperative network.";

    #[test]
    fn summary_prefers_on_topic_sentences() {
        let summary = summarize(TEXT, 3).unwrap();
        assert_eq!(summary.len(), 3);
        assert!(
            !summary.iter().any(|s| s.contains("rained")),
            "off-topic sentence should be dropped: {summary:?}"
        );
    }

    #[test]
    fn summary_preserves_original_order() {
        let summary = summarize(TEXT, 3).unwrap();
        let positions: Vec<usize> = summary
            .iter()
            .map(|s| TEXT.find(s.as_str()).unwrap())
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn short_text_returned_whole() {
        let summary = summarize("One sentence only.", 3).unwrap();
        assert_eq!(summary, vec!["One sentence only"]);
    }

    #[test]
    fn validation() {
        assert!(summarize("", 2).is_err());
        assert!(summarize("Some text.", 0).is_err());
    }

    #[test]
    fn deterministic() {
        assert_eq!(summarize(TEXT, 2).unwrap(), summarize(TEXT, 2).unwrap());
    }
}
