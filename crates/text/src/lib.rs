//! # humnet-text
//!
//! Text-mining substrate for the `humnet` toolkit.
//!
//! The corpus crate generates and audits synthetic paper abstracts and
//! method sections; the qual crate tokenizes interview transcripts; the
//! survey crate detects positionality statements. All of that text handling
//! lives here:
//!
//! * [`tokenize`] — word and sentence tokenization, a stopword list, and a
//!   light suffix stemmer;
//! * [`vocab`] — vocabularies mapping terms to dense ids with document
//!   frequencies;
//! * [`tfidf`] — TF-IDF vectorization and cosine similarity;
//! * [`ngram`] — n-gram and collocation extraction;
//! * [`keywords`] — RAKE-style keyword extraction;
//! * [`classify`] — a multinomial naive-Bayes classifier with Laplace
//!   smoothing;
//! * [`generate`] — a Markov-chain generator for synthetic abstracts and
//!   transcripts (deterministic given a seed).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classify;
pub mod generate;
pub mod keywords;
pub mod ngram;
pub mod similarity;
pub mod summarize;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use classify::NaiveBayes;
pub use generate::MarkovModel;
pub use keywords::extract_keywords;
pub use ngram::{bigrams, ngrams};
pub use similarity::{jaccard, levenshtein, levenshtein_similarity};
pub use summarize::summarize;
pub use tfidf::{cosine_similarity, TfIdf};
pub use tokenize::{is_stopword, sentences, stem, tokenize};
pub use vocab::Vocabulary;

/// Errors produced by text routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextError {
    /// The operation requires a nonempty corpus or document.
    EmptyInput,
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// The model has not been fitted yet.
    NotFitted,
    /// An unknown class label was supplied.
    UnknownClass(String),
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextError::EmptyInput => write!(f, "input text or corpus is empty"),
            TextError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            TextError::NotFitted => write!(f, "model has not been fitted"),
            TextError::UnknownClass(c) => write!(f, "unknown class label: {c}"),
        }
    }
}

impl std::error::Error for TextError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, TextError>;
