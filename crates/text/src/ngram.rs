//! N-gram and collocation extraction.

use std::collections::HashMap;

/// All contiguous `n`-grams of a token sequence, joined with spaces.
/// Returns empty when `n == 0` or the sequence is shorter than `n`.
pub fn ngrams(tokens: &[String], n: usize) -> Vec<String> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.join(" ")).collect()
}

/// Bigrams of a token sequence.
pub fn bigrams(tokens: &[String]) -> Vec<String> {
    ngrams(tokens, 2)
}

/// Count n-gram occurrences across many documents, returning pairs sorted
/// by descending count (alphabetical tiebreak).
pub fn ngram_counts(documents: &[Vec<String>], n: usize) -> Vec<(String, u64)> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    for doc in documents {
        for gram in ngrams(doc, n) {
            *counts.entry(gram).or_insert(0) += 1;
        }
    }
    let mut pairs: Vec<(String, u64)> = counts.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    pairs
}

/// Pointwise mutual information of bigrams across a corpus:
/// `pmi(a b) = ln( p(a b) / (p(a) p(b)) )`, computed over token and bigram
/// frequencies. Only bigrams with count ≥ `min_count` are scored. Returns
/// pairs sorted by descending PMI.
pub fn collocations(documents: &[Vec<String>], min_count: u64) -> Vec<(String, f64)> {
    let mut unigram: HashMap<&str, u64> = HashMap::new();
    let mut bigram: HashMap<(String, String), u64> = HashMap::new();
    let mut total_tokens = 0u64;
    let mut total_bigrams = 0u64;
    for doc in documents {
        for t in doc {
            *unigram.entry(t.as_str()).or_insert(0) += 1;
            total_tokens += 1;
        }
        for w in doc.windows(2) {
            *bigram.entry((w[0].clone(), w[1].clone())).or_insert(0) += 1;
            total_bigrams += 1;
        }
    }
    if total_tokens == 0 || total_bigrams == 0 {
        return Vec::new();
    }
    let mut scored: Vec<(String, f64)> = bigram
        .into_iter()
        .filter(|&(_, c)| c >= min_count)
        .map(|((a, b), c)| {
            let p_ab = c as f64 / total_bigrams as f64;
            let p_a = unigram[a.as_str()] as f64 / total_tokens as f64;
            let p_b = unigram[b.as_str()] as f64 / total_tokens as f64;
            (format!("{a} {b}"), (p_ab / (p_a * p_b)).ln())
        })
        .collect();
    scored.sort_by(|x, y| {
        y.1.partial_cmp(&x.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.0.cmp(&y.0))
    });
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    #[test]
    fn ngrams_basic() {
        let toks = tokenize("a b c d");
        assert_eq!(ngrams(&toks, 2), vec!["a b", "b c", "c d"]);
        assert_eq!(ngrams(&toks, 3), vec!["a b c", "b c d"]);
        assert_eq!(ngrams(&toks, 4), vec!["a b c d"]);
    }

    #[test]
    fn ngrams_degenerate() {
        let toks = tokenize("a b");
        assert!(ngrams(&toks, 0).is_empty());
        assert!(ngrams(&toks, 3).is_empty());
        assert!(ngrams(&[], 1).is_empty());
    }

    #[test]
    fn bigram_shortcut() {
        let toks = tokenize("packet switched networks");
        assert_eq!(bigrams(&toks), vec!["packet switched", "switched networks"]);
    }

    #[test]
    fn ngram_counts_sorted() {
        let docs = vec![tokenize("a b a b"), tokenize("a b c")];
        let counts = ngram_counts(&docs, 2);
        assert_eq!(counts[0], ("a b".to_string(), 3));
    }

    #[test]
    fn collocations_rank_fixed_phrases() {
        // "route server" always co-occurs; "the network" is diluted by
        // independent uses of both words.
        let docs: Vec<Vec<String>> = vec![
            tokenize("the route server at the exchange"),
            tokenize("a route server for the network"),
            tokenize("the network measured the network again route server"),
        ];
        let colls = collocations(&docs, 2);
        let rs = colls.iter().find(|(g, _)| g == "route server").unwrap();
        let tn = colls.iter().find(|(g, _)| g == "the network").unwrap();
        assert!(rs.1 > tn.1, "route server PMI {} vs the network {}", rs.1, tn.1);
    }

    #[test]
    fn collocations_empty_corpus() {
        assert!(collocations(&[], 1).is_empty());
        assert!(collocations(&[vec![]], 1).is_empty());
    }
}
