//! Vocabularies: term ↔ dense-id maps with frequency bookkeeping.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A growable vocabulary assigning dense ids to terms, tracking total and
/// document frequencies.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    term_to_id: HashMap<String, usize>,
    id_to_term: Vec<String>,
    /// Total occurrences of each term across all observed documents.
    term_freq: Vec<u64>,
    /// Number of documents each term appeared in at least once.
    doc_freq: Vec<u64>,
    /// Number of documents observed.
    docs: u64,
}

impl Vocabulary {
    /// Create an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.id_to_term.len()
    }

    /// True if no terms have been observed.
    pub fn is_empty(&self) -> bool {
        self.id_to_term.is_empty()
    }

    /// Number of documents observed via [`Vocabulary::observe_document`].
    pub fn document_count(&self) -> u64 {
        self.docs
    }

    /// Intern a term, returning its id (existing or new). Does not touch
    /// frequency counters.
    pub fn intern(&mut self, term: &str) -> usize {
        if let Some(&id) = self.term_to_id.get(term) {
            return id;
        }
        let id = self.id_to_term.len();
        self.term_to_id.insert(term.to_owned(), id);
        self.id_to_term.push(term.to_owned());
        self.term_freq.push(0);
        self.doc_freq.push(0);
        id
    }

    /// Look up a term's id without inserting.
    pub fn id(&self, term: &str) -> Option<usize> {
        self.term_to_id.get(term).copied()
    }

    /// Look up the term for an id.
    pub fn term(&self, id: usize) -> Option<&str> {
        self.id_to_term.get(id).map(String::as_str)
    }

    /// Total occurrences of a term across observed documents.
    pub fn term_frequency(&self, term: &str) -> u64 {
        self.id(term).map_or(0, |id| self.term_freq[id])
    }

    /// Number of observed documents containing the term.
    pub fn document_frequency(&self, term: &str) -> u64 {
        self.id(term).map_or(0, |id| self.doc_freq[id])
    }

    /// Record one document's tokens: updates term, document, and corpus
    /// counters. Returns the token ids in order.
    pub fn observe_document(&mut self, tokens: &[String]) -> Vec<usize> {
        self.docs += 1;
        let ids: Vec<usize> = tokens.iter().map(|t| self.intern(t)).collect();
        let mut seen: Vec<usize> = Vec::new();
        for &id in &ids {
            self.term_freq[id] += 1;
            if !seen.contains(&id) {
                self.doc_freq[id] += 1;
                seen.push(id);
            }
        }
        ids
    }

    /// The `k` most frequent terms with their counts, ties broken
    /// alphabetically for determinism.
    pub fn top_terms(&self, k: usize) -> Vec<(String, u64)> {
        let mut pairs: Vec<(String, u64)> = self
            .id_to_term
            .iter()
            .cloned()
            .zip(self.term_freq.iter().copied())
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("network");
        let b = v.intern("network");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_order() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), 0);
        assert_eq!(v.intern("b"), 1);
        assert_eq!(v.intern("c"), 2);
        assert_eq!(v.term(1), Some("b"));
        assert_eq!(v.id("c"), Some(2));
        assert_eq!(v.id("d"), None);
        assert_eq!(v.term(99), None);
    }

    #[test]
    fn observe_counts_term_and_doc_freq() {
        let mut v = Vocabulary::new();
        v.observe_document(&toks(&["bgp", "bgp", "peering"]));
        v.observe_document(&toks(&["peering", "ixp"]));
        assert_eq!(v.document_count(), 2);
        assert_eq!(v.term_frequency("bgp"), 2);
        assert_eq!(v.document_frequency("bgp"), 1);
        assert_eq!(v.term_frequency("peering"), 2);
        assert_eq!(v.document_frequency("peering"), 2);
        assert_eq!(v.term_frequency("missing"), 0);
    }

    #[test]
    fn top_terms_ordering() {
        let mut v = Vocabulary::new();
        v.observe_document(&toks(&["b", "b", "a", "a", "c"]));
        let top = v.top_terms(2);
        // a and b tie at 2; alphabetical tiebreak puts a first.
        assert_eq!(top, vec![("a".into(), 2), ("b".into(), 2)]);
    }

    #[test]
    fn empty_vocab() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert!(v.top_terms(5).is_empty());
    }
}
