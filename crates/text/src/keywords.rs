//! RAKE-style keyword extraction.
//!
//! Rapid Automatic Keyword Extraction (Rose et al. 2010): candidate phrases
//! are maximal runs of non-stopwords; each word is scored by
//! `degree / frequency` over the co-occurrence graph of candidate phrases,
//! and a phrase's score is the sum of its word scores.

use crate::tokenize::{is_stopword, sentences, tokenize};
use std::collections::HashMap;

/// A scored keyword phrase.
#[derive(Debug, Clone, PartialEq)]
pub struct Keyword {
    /// The phrase (lowercased, space-joined).
    pub phrase: String,
    /// RAKE score (higher = more salient).
    pub score: f64,
}

/// Extract the top `k` keyword phrases from free text.
///
/// Deterministic: ties are broken alphabetically. Returns fewer than `k`
/// phrases when the text is short.
pub fn extract_keywords(text: &str, k: usize) -> Vec<Keyword> {
    // 1. Candidate phrases: stopword-delimited runs within sentences.
    let mut phrases: Vec<Vec<String>> = Vec::new();
    for sentence in sentences(text) {
        let mut current: Vec<String> = Vec::new();
        for tok in tokenize(&sentence) {
            if is_stopword(&tok) {
                if !current.is_empty() {
                    phrases.push(std::mem::take(&mut current));
                }
            } else {
                current.push(tok);
            }
        }
        if !current.is_empty() {
            phrases.push(current);
        }
    }
    if phrases.is_empty() {
        return Vec::new();
    }
    // 2. Word scores: degree / frequency.
    let mut freq: HashMap<&str, f64> = HashMap::new();
    let mut degree: HashMap<&str, f64> = HashMap::new();
    for phrase in &phrases {
        let deg = phrase.len() as f64 - 1.0;
        for w in phrase {
            *freq.entry(w).or_insert(0.0) += 1.0;
            *degree.entry(w).or_insert(0.0) += deg;
        }
    }
    // 3. Phrase scores: sum of word scores, dedup phrases.
    let mut scored: HashMap<String, f64> = HashMap::new();
    for phrase in &phrases {
        let score: f64 = phrase
            .iter()
            .map(|w| {
                let f = freq[w.as_str()];
                let d = degree[w.as_str()] + f; // degree includes self
                d / f
            })
            .sum();
        let key = phrase.join(" ");
        scored.entry(key).or_insert(score);
    }
    let mut out: Vec<Keyword> = scored
        .into_iter()
        .map(|(phrase, score)| Keyword { phrase, score })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.phrase.cmp(&b.phrase))
    });
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "Community networks are built by local operators. \
        Local operators maintain community networks with volunteer labor. \
        The Internet is experienced by people.";

    #[test]
    fn extracts_multiword_phrases() {
        let kws = extract_keywords(SAMPLE, 5);
        assert!(!kws.is_empty());
        let phrases: Vec<&str> = kws.iter().map(|k| k.phrase.as_str()).collect();
        assert!(
            phrases.contains(&"community networks"),
            "phrases = {phrases:?}"
        );
        assert!(phrases.contains(&"local operators"), "phrases = {phrases:?}");
    }

    #[test]
    fn longer_phrases_outscore_single_words() {
        let kws = extract_keywords(SAMPLE, 10);
        let multi = kws
            .iter()
            .find(|kw| kw.phrase == "community networks")
            .unwrap();
        let single = kws.iter().find(|kw| kw.phrase == "people").unwrap();
        assert!(multi.score > single.score);
    }

    #[test]
    fn respects_k() {
        let kws = extract_keywords(SAMPLE, 2);
        assert_eq!(kws.len(), 2);
    }

    #[test]
    fn empty_text_yields_nothing() {
        assert!(extract_keywords("", 5).is_empty());
        assert!(extract_keywords("the of and", 5).is_empty());
    }

    #[test]
    fn deterministic_output() {
        assert_eq!(extract_keywords(SAMPLE, 5), extract_keywords(SAMPLE, 5));
    }

    #[test]
    fn scores_are_sorted_descending() {
        let kws = extract_keywords(SAMPLE, 10);
        for w in kws.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
