//! String and set similarity measures.

/// Levenshtein edit distance between two strings (char-level), classic
//  dynamic-programming with two rows.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized Levenshtein similarity in `[0, 1]`: `1 − d / max_len`.
/// Two empty strings are fully similar.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaccard similarity of the token *sets* of two token sequences.
/// Two empty sequences are fully similar.
pub fn jaccard(a: &[String], b: &[String]) -> f64 {
    use std::collections::HashSet;
    let sa: HashSet<&str> = a.iter().map(String::as_str).collect();
    let sb: HashSet<&str> = b.iter().map(String::as_str).collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    #[test]
    fn levenshtein_classics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        for (a, b) in [("peering", "peer"), ("bgp", "gbp"), ("", "x")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn levenshtein_unicode() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn levenshtein_similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("network", "networks");
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn jaccard_basics() {
        let a = tokenize("the community runs the network");
        let b = tokenize("the network serves the community");
        let j = jaccard(&a, &b);
        // sets: {the, community, runs, network} vs {the, network, serves,
        // community}: inter 3 (the, community, network), union 5.
        assert!((j - 3.0 / 5.0).abs() < 1e-12, "j = {j}");
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&a, &[]), 0.0);
    }
}
