//! # humnet-agenda
//!
//! Research-ecosystem agent-based model for the `humnet` toolkit.
//!
//! The paper's central empirical claim (§1) is a feedback loop: problems
//! that are *visible in data* and *backed by funding* get instrumented,
//! published on, and thereby made more visible — while problems experienced
//! by people outside the room ("economic precarity, infrastructural
//! instability, linguistic and geopolitical marginality") never surface at
//! all. Its central prescription (§2, §5) is that participatory and
//! ethnographic problem-sourcing breaks the loop.
//!
//! This crate makes the loop executable:
//!
//! * [`model`] — a problem space stratified by stakeholder class, each
//!   problem carrying *visibility* (how readily it appears in measurement
//!   data), *impact* (human consequence), and *funding*; plus a researcher
//!   population.
//! * [`regime`] — four method regimes (data-driven, PAR, ethnographic,
//!   mixed) that differ in how researchers *discover* problems and how
//!   fast they publish.
//! * [`sim`] — the round-based simulation with the
//!   publication→funding→visibility feedback loop.
//! * [`metrics`] — attention concentration (Gini/Lorenz over stakeholder
//!   classes), marginalized-problem coverage, time-to-surface.
//! * [`review`] — a venue-gatekeeping model for experiment **T5**: how
//!   review weight profiles decide which methods get published where.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adoption;
pub mod metrics;
pub mod model;
pub mod regime;
pub mod review;
pub mod sim;

pub use adoption::{simulate_adoption, AdoptionConfig, AdoptionSnapshot};
pub use metrics::{attention_by_class, attention_gini, coverage, mean_time_to_surface};
pub use model::{Problem, ProblemSpace, SpaceConfig, StakeholderClass};
pub use regime::MethodRegime;
pub use review::{ContributionProfile, ReviewConfig, ReviewOutcome, VenueWeights};
pub use sim::{AgendaConfig, AgendaSim, RoundSnapshot};

/// Errors produced by the agenda model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgendaError {
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// The operation requires a nonempty input.
    EmptyInput,
}

impl std::fmt::Display for AgendaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgendaError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            AgendaError::EmptyInput => write!(f, "input is empty"),
        }
    }
}

impl std::error::Error for AgendaError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, AgendaError>;
