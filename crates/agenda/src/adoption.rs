//! Method-adoption dynamics under venue gatekeeping (experiment **F9**).
//!
//! §6.4 of the paper asks "the people setting the calls for papers" to
//! explicitly encourage human methods, on the theory that venue incentives
//! shape what researchers do. This module closes that loop with replicator
//! dynamics: each publication cycle, authors submit in proportion to the
//! current population mix, the venue accepts per its weight profile, and
//! the next cycle's mix shifts toward whichever methodology got its people
//! published. A CFP intervention at a chosen round changes the weights;
//! the trajectory shows whether (and how fast) the community follows.

use crate::review::{run_review, ReviewConfig, VenueWeights};
use crate::{AgendaError, Result};
use serde::{Deserialize, Serialize};

/// Configuration of an adoption-dynamics run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdoptionConfig {
    /// Publication cycles to simulate.
    pub rounds: u32,
    /// Cycle at which the CFP is broadened (`None` = never).
    pub intervention_round: Option<u32>,
    /// Human-insight weight after the intervention.
    pub human_weight_after: f64,
    /// Initial share of authors doing human-centered work, in `(0, 1)`.
    pub initial_human_share: f64,
    /// Total submissions per cycle.
    pub submissions_per_round: usize,
    /// Selection strength in `(0, 1]`: how strongly authors chase
    /// acceptance (1 = full replicator step).
    pub selection_strength: f64,
    /// Floor share (mobility in and out of the community never lets a
    /// methodology vanish entirely).
    pub floor: f64,
    /// Base review configuration (acceptance rate, noise).
    pub review: ReviewConfig,
}

impl Default for AdoptionConfig {
    fn default() -> Self {
        AdoptionConfig {
            rounds: 30,
            intervention_round: Some(15),
            human_weight_after: 0.45,
            initial_human_share: 0.25,
            submissions_per_round: 200,
            selection_strength: 0.5,
            floor: 0.02,
            review: ReviewConfig::default(),
        }
    }
}

impl AdoptionConfig {
    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        if self.rounds == 0 {
            return Err(AgendaError::InvalidParameter("rounds must be >= 1"));
        }
        if !(0.0..1.0).contains(&self.initial_human_share) || self.initial_human_share <= 0.0 {
            return Err(AgendaError::InvalidParameter("initial_human_share must be in (0,1)"));
        }
        if self.submissions_per_round < 10 {
            return Err(AgendaError::InvalidParameter("need >= 10 submissions per round"));
        }
        if !(0.0..=1.0).contains(&self.selection_strength) || self.selection_strength == 0.0 {
            return Err(AgendaError::InvalidParameter("selection_strength must be in (0,1]"));
        }
        if !(0.0..0.5).contains(&self.floor) {
            return Err(AgendaError::InvalidParameter("floor must be in [0, 0.5)"));
        }
        if !(0.0..=1.0).contains(&self.human_weight_after) {
            return Err(AgendaError::InvalidParameter("human_weight_after must be in [0,1]"));
        }
        Ok(())
    }
}

/// One cycle of the trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdoptionSnapshot {
    /// Cycle index.
    pub round: u32,
    /// Share of authors doing human-centered work this cycle.
    pub human_share: f64,
    /// Acceptance rate of human-centered submissions this cycle.
    pub human_acceptance: f64,
    /// Acceptance rate of systems submissions this cycle.
    pub systems_acceptance: f64,
    /// Whether the broadened CFP was in force.
    pub intervened: bool,
}

/// Run the adoption dynamics; returns one snapshot per cycle.
pub fn simulate_adoption(config: &AdoptionConfig) -> Result<Vec<AdoptionSnapshot>> {
    config.validate()?;
    let mut share = config.initial_human_share;
    let mut out = Vec::with_capacity(config.rounds as usize);
    for round in 0..config.rounds {
        let intervened = config
            .intervention_round
            .map(|r| round >= r)
            .unwrap_or(false);
        let weights = if intervened {
            VenueWeights::broadened(config.human_weight_after)
        } else {
            VenueWeights::traditional_systems()
        };
        let mut review = config.review.clone();
        review.human_submissions =
            ((config.submissions_per_round as f64 * share).round() as usize).max(1);
        review.systems_submissions =
            (config.submissions_per_round - review.human_submissions).max(1);
        review.seed = config.review.seed.wrapping_add(round as u64);
        let outcome = run_review(&review, &weights)
            .map_err(|_| AgendaError::InvalidParameter("review failed"))?;
        out.push(AdoptionSnapshot {
            round,
            human_share: share,
            human_acceptance: outcome.human_acceptance,
            systems_acceptance: outcome.systems_acceptance,
            intervened,
        });
        // Replicator step toward the fitter methodology, damped by
        // selection strength, clamped by the mobility floor.
        let eps = 1e-3;
        let fit_h = outcome.human_acceptance + eps;
        let fit_s = outcome.systems_acceptance + eps;
        let target = share * fit_h / (share * fit_h + (1.0 - share) * fit_s);
        share = share + config.selection_strength * (target - share);
        share = share.clamp(config.floor, 1.0 - config.floor);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let mut c = AdoptionConfig::default();
        c.rounds = 0;
        assert!(simulate_adoption(&c).is_err());
        let mut c = AdoptionConfig::default();
        c.initial_human_share = 0.0;
        assert!(simulate_adoption(&c).is_err());
        let mut c = AdoptionConfig::default();
        c.selection_strength = 0.0;
        assert!(simulate_adoption(&c).is_err());
        let mut c = AdoptionConfig::default();
        c.floor = 0.6;
        assert!(simulate_adoption(&c).is_err());
    }

    #[test]
    fn deterministic() {
        let c = AdoptionConfig::default();
        assert_eq!(simulate_adoption(&c).unwrap(), simulate_adoption(&c).unwrap());
    }

    #[test]
    fn without_intervention_human_work_is_squeezed_out() {
        let mut c = AdoptionConfig::default();
        c.intervention_round = None;
        let traj = simulate_adoption(&c).unwrap();
        let first = traj.first().unwrap().human_share;
        let last = traj.last().unwrap().human_share;
        assert!(
            last < first / 2.0,
            "human share should collapse: {first} -> {last}"
        );
        assert!(last <= c.floor + 0.05, "driven to the floor");
    }

    #[test]
    fn intervention_reverses_the_decline() {
        let c = AdoptionConfig::default();
        let traj = simulate_adoption(&c).unwrap();
        let at_intervention = traj[15].human_share;
        let last = traj.last().unwrap().human_share;
        assert!(
            last > at_intervention + 0.1,
            "share should recover after CFP change: {at_intervention} -> {last}"
        );
        // And the pre-intervention segment was declining.
        assert!(at_intervention < traj[0].human_share);
        // Snapshot flags are set correctly.
        assert!(!traj[14].intervened);
        assert!(traj[15].intervened);
    }

    #[test]
    fn stronger_cfp_weight_recovers_faster() {
        let mut weak = AdoptionConfig::default();
        weak.human_weight_after = 0.40;
        let mut strong = AdoptionConfig::default();
        strong.human_weight_after = 0.55;
        let w = simulate_adoption(&weak).unwrap().last().unwrap().human_share;
        let s = simulate_adoption(&strong).unwrap().last().unwrap().human_share;
        assert!(s > w, "strong {s} vs weak {w}");
    }

    #[test]
    fn share_stays_in_bounds() {
        let c = AdoptionConfig::default();
        for snap in simulate_adoption(&c).unwrap() {
            assert!((c.floor..=1.0 - c.floor).contains(&snap.human_share));
            assert!((0.0..=1.0).contains(&snap.human_acceptance));
            assert!((0.0..=1.0).contains(&snap.systems_acceptance));
        }
    }
}
