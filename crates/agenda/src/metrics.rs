//! Attention and coverage metrics over a finished agenda run.

use crate::model::{ProblemSpace, StakeholderClass};
use crate::{AgendaError, Result};

/// Publications per stakeholder class (order of [`StakeholderClass::ALL`]).
pub fn attention_by_class(space: &ProblemSpace) -> Vec<(StakeholderClass, u64)> {
    StakeholderClass::ALL
        .iter()
        .map(|&c| {
            let pubs = space
                .problems
                .iter()
                .filter(|p| p.stakeholder == c)
                .map(|p| p.publications as u64)
                .sum();
            (c, pubs)
        })
        .collect()
}

/// Gini coefficient of per-problem publication counts — the concentration
/// of research attention (experiment **F1**).
pub fn attention_gini(space: &ProblemSpace) -> Result<f64> {
    if space.is_empty() {
        return Err(AgendaError::EmptyInput);
    }
    let counts: Vec<f64> = space.problems.iter().map(|p| p.publications as f64).collect();
    humnet_stats::gini(&counts).map_err(|_| AgendaError::InvalidParameter("no publications"))
}

/// Fraction of problems of the given marginalization status that surfaced.
pub fn coverage(space: &ProblemSpace, marginalized: bool) -> Result<f64> {
    let pool: Vec<_> = space
        .problems
        .iter()
        .filter(|p| p.stakeholder.is_marginalized() == marginalized)
        .collect();
    if pool.is_empty() {
        return Err(AgendaError::EmptyInput);
    }
    Ok(pool.iter().filter(|p| p.surfaced_round.is_some()).count() as f64 / pool.len() as f64)
}

/// Mean round at which problems of a class surfaced (surfaced ones only).
/// Returns `None` when no problem of the class surfaced.
pub fn mean_time_to_surface(space: &ProblemSpace, class: StakeholderClass) -> Option<f64> {
    let rounds: Vec<f64> = space
        .problems
        .iter()
        .filter(|p| p.stakeholder == class)
        .filter_map(|p| p.surfaced_round.map(|r| r as f64))
        .collect();
    if rounds.is_empty() {
        None
    } else {
        Some(rounds.iter().sum::<f64>() / rounds.len() as f64)
    }
}

/// Shannon entropy (nats) of the attention distribution over classes —
/// higher means broader agendas.
pub fn attention_entropy(space: &ProblemSpace) -> Result<f64> {
    let counts: Vec<f64> = attention_by_class(space)
        .into_iter()
        .map(|(_, c)| c as f64)
        .collect();
    humnet_stats::shannon_entropy(&counts)
        .map_err(|_| AgendaError::InvalidParameter("no publications"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regime::MethodRegime;
    use crate::sim::{AgendaConfig, AgendaSim};

    fn finished(regime: MethodRegime) -> AgendaSim {
        let mut cfg = AgendaConfig::default();
        cfg.regime = regime;
        cfg.seed = 13;
        let mut sim = AgendaSim::new(cfg).unwrap();
        sim.run().unwrap();
        sim
    }

    #[test]
    fn attention_sums_to_total_publications() {
        let sim = finished(MethodRegime::DataDriven);
        let by_class: u64 = attention_by_class(&sim.space).iter().map(|&(_, c)| c).sum();
        assert_eq!(by_class, sim.history().last().unwrap().publications);
    }

    #[test]
    fn data_driven_more_concentrated_than_par() {
        let dd = attention_gini(&finished(MethodRegime::DataDriven).space).unwrap();
        let par = attention_gini(&finished(MethodRegime::Par).space).unwrap();
        assert!(dd > par, "data-driven gini {dd} should exceed par {par}");
    }

    #[test]
    fn par_has_higher_entropy() {
        let dd = attention_entropy(&finished(MethodRegime::DataDriven).space).unwrap();
        let par = attention_entropy(&finished(MethodRegime::Par).space).unwrap();
        assert!(par > dd);
    }

    #[test]
    fn coverage_bounds_and_gap() {
        let sim = finished(MethodRegime::DataDriven);
        let marg = coverage(&sim.space, true).unwrap();
        let dominant = coverage(&sim.space, false).unwrap();
        assert!((0.0..=1.0).contains(&marg));
        assert!(dominant > marg, "dominant {dominant} vs marginalized {marg}");
    }

    #[test]
    fn time_to_surface_ordering_under_data_driven() {
        // A small researcher population makes surfacing gradual enough for
        // the ordering to show (with 200 researchers nearly everything
        // surfaces in round 0). Average over seeds for robustness.
        let mut hyper_sum = 0.0;
        let mut comm_sum = 0.0;
        let mut comm_n = 0;
        for seed in 0..5 {
            let mut cfg = AgendaConfig::default();
            cfg.regime = MethodRegime::DataDriven;
            cfg.researchers = 15;
            cfg.seed = seed;
            let mut sim = AgendaSim::new(cfg).unwrap();
            sim.run().unwrap();
            hyper_sum +=
                mean_time_to_surface(&sim.space, StakeholderClass::Hyperscaler).unwrap();
            if let Some(c) =
                mean_time_to_surface(&sim.space, StakeholderClass::CommunityOperator)
            {
                comm_sum += c;
                comm_n += 1;
            }
        }
        let hyper = hyper_sum / 5.0;
        assert!(hyper < 15.0, "hyperscaler surfaced at mean round {hyper}");
        if comm_n > 0 {
            let comm = comm_sum / comm_n as f64;
            assert!(
                comm > hyper,
                "community problems should surface later: {comm} vs {hyper}"
            );
        }
    }

    #[test]
    fn empty_space_errors() {
        let space = ProblemSpace { problems: vec![] };
        assert!(attention_gini(&space).is_err());
        assert!(coverage(&space, true).is_err());
        assert!(mean_time_to_surface(&space, StakeholderClass::Hyperscaler).is_none());
    }
}
