//! The problem space and its stakeholder strata.

use crate::{AgendaError, Result};
use humnet_stats::Rng;
use serde::{Deserialize, Serialize};

/// Classes of Internet stakeholder whose problems compete for research
/// attention (mirrors the paper's §1 framing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StakeholderClass {
    /// Hyperscale cloud and content operators.
    Hyperscaler,
    /// Commercial transit/access ISPs.
    TransitIsp,
    /// The research community's own infrastructure.
    ResearchCommunity,
    /// Community / rural / last-mile operators.
    CommunityOperator,
    /// Regulators and policy bodies.
    Regulator,
    /// End users at large.
    EndUsers,
}

impl StakeholderClass {
    /// All classes.
    pub const ALL: [StakeholderClass; 6] = [
        StakeholderClass::Hyperscaler,
        StakeholderClass::TransitIsp,
        StakeholderClass::ResearchCommunity,
        StakeholderClass::CommunityOperator,
        StakeholderClass::Regulator,
        StakeholderClass::EndUsers,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            StakeholderClass::Hyperscaler => "hyperscaler",
            StakeholderClass::TransitIsp => "transit-isp",
            StakeholderClass::ResearchCommunity => "research-community",
            StakeholderClass::CommunityOperator => "community-operator",
            StakeholderClass::Regulator => "regulator",
            StakeholderClass::EndUsers => "end-users",
        }
    }

    /// The paper's marginalized stakeholders.
    pub fn is_marginalized(&self) -> bool {
        matches!(
            self,
            StakeholderClass::CommunityOperator | StakeholderClass::EndUsers
        )
    }

    /// Default per-class generation parameters:
    /// `(count, visibility_mean, impact_mean, funding_mean)`.
    ///
    /// Calibration reflects the paper's framing: hyperscaler problems are
    /// hyper-visible (telemetry everywhere) and lavishly funded but touch
    /// operators more than people; community/end-user problems are high
    /// impact, nearly invisible to measurement, and unfunded.
    pub fn default_profile(&self) -> (usize, f64, f64, f64) {
        match self {
            StakeholderClass::Hyperscaler => (20, 0.90, 0.45, 0.90),
            StakeholderClass::TransitIsp => (20, 0.70, 0.50, 0.60),
            StakeholderClass::ResearchCommunity => (15, 0.80, 0.35, 0.50),
            StakeholderClass::CommunityOperator => (20, 0.15, 0.80, 0.10),
            StakeholderClass::Regulator => (10, 0.35, 0.60, 0.40),
            StakeholderClass::EndUsers => (25, 0.20, 0.85, 0.15),
        }
    }
}

/// One research problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    /// Dense id.
    pub id: usize,
    /// Whose operational reality it reflects.
    pub stakeholder: StakeholderClass,
    /// How readily the problem shows up in measurable data, `[0, 1]`.
    pub visibility: f64,
    /// Human impact if solved, `[0, 1]`.
    pub impact: f64,
    /// Funding behind the problem, `[0, 1]` (grows with publications).
    pub funding: f64,
    /// Round at which the problem first got a publication.
    pub surfaced_round: Option<u32>,
    /// Publications accumulated.
    pub publications: u32,
}

/// Configuration of the problem space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceConfig {
    /// Per-class overrides; `None` uses
    /// [`StakeholderClass::default_profile`].
    pub profiles: Vec<(StakeholderClass, usize, f64, f64, f64)>,
    /// Beta-ish jitter applied around the class means.
    pub jitter: f64,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        SpaceConfig {
            profiles: StakeholderClass::ALL
                .iter()
                .map(|&c| {
                    let (n, v, i, f) = c.default_profile();
                    (c, n, v, i, f)
                })
                .collect(),
            jitter: 0.1,
        }
    }
}

/// The population of problems.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemSpace {
    /// All problems.
    pub problems: Vec<Problem>,
}

impl ProblemSpace {
    /// Generate a problem space deterministically.
    pub fn generate(config: &SpaceConfig, rng: &mut Rng) -> Result<Self> {
        if config.profiles.is_empty() {
            return Err(AgendaError::EmptyInput);
        }
        if config.jitter < 0.0 || config.jitter > 0.5 {
            return Err(AgendaError::InvalidParameter("jitter must be in [0, 0.5]"));
        }
        let mut problems = Vec::new();
        for &(class, count, vis, imp, fund) in &config.profiles {
            for _ in 0..count {
                let j = |mean: f64, rng: &mut Rng| -> f64 {
                    (mean + rng.range_f64(-config.jitter, config.jitter)).clamp(0.0, 1.0)
                };
                problems.push(Problem {
                    id: problems.len(),
                    stakeholder: class,
                    visibility: j(vis, rng),
                    impact: j(imp, rng),
                    funding: j(fund, rng),
                    surfaced_round: None,
                    publications: 0,
                });
            }
        }
        if problems.is_empty() {
            return Err(AgendaError::EmptyInput);
        }
        Ok(ProblemSpace { problems })
    }

    /// Number of problems.
    pub fn len(&self) -> usize {
        self.problems.len()
    }

    /// True when there are no problems.
    pub fn is_empty(&self) -> bool {
        self.problems.is_empty()
    }

    /// Problems of one stakeholder class.
    pub fn of_class(&self, class: StakeholderClass) -> Vec<&Problem> {
        self.problems
            .iter()
            .filter(|p| p.stakeholder == class)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_covers_all_classes() {
        let mut rng = Rng::new(1);
        let s = ProblemSpace::generate(&SpaceConfig::default(), &mut rng).unwrap();
        assert_eq!(s.len(), 110);
        for class in StakeholderClass::ALL {
            assert!(!s.of_class(class).is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SpaceConfig::default();
        let a = ProblemSpace::generate(&cfg, &mut Rng::new(5)).unwrap();
        let b = ProblemSpace::generate(&cfg, &mut Rng::new(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn attributes_bounded_and_calibrated() {
        let mut rng = Rng::new(2);
        let s = ProblemSpace::generate(&SpaceConfig::default(), &mut rng).unwrap();
        for p in &s.problems {
            assert!((0.0..=1.0).contains(&p.visibility));
            assert!((0.0..=1.0).contains(&p.impact));
            assert!((0.0..=1.0).contains(&p.funding));
            assert_eq!(p.publications, 0);
            assert!(p.surfaced_round.is_none());
        }
        // Calibration: hyperscaler problems more visible than community ones.
        let mean = |class: StakeholderClass, f: fn(&Problem) -> f64| {
            let ps = s.of_class(class);
            ps.iter().map(|p| f(p)).sum::<f64>() / ps.len() as f64
        };
        assert!(
            mean(StakeholderClass::Hyperscaler, |p| p.visibility)
                > mean(StakeholderClass::CommunityOperator, |p| p.visibility) + 0.4
        );
        assert!(
            mean(StakeholderClass::EndUsers, |p| p.impact)
                > mean(StakeholderClass::Hyperscaler, |p| p.impact)
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = Rng::new(1);
        let cfg = SpaceConfig {
            profiles: vec![],
            jitter: 0.1,
        };
        assert!(ProblemSpace::generate(&cfg, &mut rng).is_err());
        let mut cfg = SpaceConfig::default();
        cfg.jitter = 0.9;
        assert!(ProblemSpace::generate(&cfg, &mut rng).is_err());
    }

    #[test]
    fn marginalized_labels() {
        assert!(StakeholderClass::EndUsers.is_marginalized());
        assert!(StakeholderClass::CommunityOperator.is_marginalized());
        assert!(!StakeholderClass::Hyperscaler.is_marginalized());
        assert!(!StakeholderClass::Regulator.is_marginalized());
    }
}
