//! Method regimes: how researchers discover problems.

use crate::model::Problem;
use serde::{Deserialize, Serialize};

/// The problem-sourcing methodology of a researcher population — the
/// independent variable of experiment **T1**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MethodRegime {
    /// Projects "begin with datasets" (§2): discovery weight follows what
    /// is visible in measurement data and what funding instruments exist,
    /// and publications feed back into discoverability.
    DataDriven,
    /// Participatory action research: problems are sourced from the
    /// communities experiencing them, weighted by human impact; slower
    /// per-round publication throughput (engagement takes time).
    Par,
    /// Ethnographic: fieldwork surfaces what measurement cannot see —
    /// discovery weight tilts toward *low-visibility* high-impact problems;
    /// slowest throughput.
    Ethnographic,
    /// A mixed portfolio: half data-driven, half participatory.
    Mixed,
}

impl MethodRegime {
    /// All regimes.
    pub const ALL: [MethodRegime; 4] = [
        MethodRegime::DataDriven,
        MethodRegime::Par,
        MethodRegime::Ethnographic,
        MethodRegime::Mixed,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            MethodRegime::DataDriven => "data-driven",
            MethodRegime::Par => "par",
            MethodRegime::Ethnographic => "ethnographic",
            MethodRegime::Mixed => "mixed",
        }
    }

    /// Discovery weight for a problem: the relative probability that a
    /// researcher working under this regime picks it up. The
    /// `0.01` floors keep every problem discoverable in principle (nothing
    /// is truly probability-zero; the loop is a bias, not a ban).
    pub fn discovery_weight(&self, p: &Problem) -> f64 {
        match self {
            MethodRegime::DataDriven => {
                // Visibility × funding, amplified by prior publications
                // (the feedback loop): w = (v·f + 0.01) · (1 + pubs).
                (p.visibility * p.funding + 0.01) * (1.0 + p.publications as f64)
            }
            MethodRegime::Par => {
                // Impact-led; mild preference for problems communities are
                // already organized around (a little funding helps), no
                // publication feedback (each engagement is grounded anew).
                p.impact + 0.2 * p.funding + 0.01
            }
            MethodRegime::Ethnographic => {
                // Fieldwork goes looking precisely where data does not:
                // impact × (1 − visibility).
                p.impact * (1.0 - p.visibility) + 0.01
            }
            MethodRegime::Mixed => {
                0.5 * MethodRegime::DataDriven.discovery_weight(p)
                    + 0.5 * MethodRegime::Par.discovery_weight(p)
            }
        }
    }

    /// Publications produced per researcher-round: qualitative engagement
    /// is slower than running a measurement pipeline (§6.2.1's scale
    /// tension, taken seriously rather than assumed away).
    pub fn throughput(&self) -> f64 {
        match self {
            MethodRegime::DataDriven => 1.0,
            MethodRegime::Par => 0.55,
            MethodRegime::Ethnographic => 0.45,
            MethodRegime::Mixed => 0.75,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StakeholderClass;

    fn problem(visibility: f64, impact: f64, funding: f64, pubs: u32) -> Problem {
        Problem {
            id: 0,
            stakeholder: StakeholderClass::Hyperscaler,
            visibility,
            impact,
            funding,
            surfaced_round: None,
            publications: pubs,
        }
    }

    #[test]
    fn data_driven_follows_visibility_and_funding() {
        let visible = problem(0.9, 0.3, 0.9, 0);
        let invisible = problem(0.1, 0.9, 0.1, 0);
        let r = MethodRegime::DataDriven;
        assert!(r.discovery_weight(&visible) > 5.0 * r.discovery_weight(&invisible));
    }

    #[test]
    fn data_driven_feedback_amplifies() {
        let fresh = problem(0.5, 0.5, 0.5, 0);
        let hot = problem(0.5, 0.5, 0.5, 10);
        let r = MethodRegime::DataDriven;
        assert!((r.discovery_weight(&hot) / r.discovery_weight(&fresh) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn par_follows_impact() {
        let visible = problem(0.9, 0.3, 0.9, 0);
        let impactful = problem(0.1, 0.9, 0.1, 0);
        let r = MethodRegime::Par;
        assert!(r.discovery_weight(&impactful) > r.discovery_weight(&visible));
    }

    #[test]
    fn ethnography_prefers_the_invisible() {
        let seen = problem(0.9, 0.8, 0.5, 0);
        let unseen = problem(0.1, 0.8, 0.5, 0);
        let r = MethodRegime::Ethnographic;
        assert!(r.discovery_weight(&unseen) > 5.0 * r.discovery_weight(&seen));
    }

    #[test]
    fn par_has_no_publication_feedback() {
        let fresh = problem(0.5, 0.5, 0.5, 0);
        let hot = problem(0.5, 0.5, 0.5, 10);
        let r = MethodRegime::Par;
        assert!((r.discovery_weight(&hot) - r.discovery_weight(&fresh)).abs() < 1e-12);
    }

    #[test]
    fn weights_always_positive() {
        let zero = problem(0.0, 0.0, 0.0, 0);
        for r in MethodRegime::ALL {
            assert!(r.discovery_weight(&zero) > 0.0, "{r:?}");
        }
    }

    #[test]
    fn throughput_ordering() {
        assert!(MethodRegime::DataDriven.throughput() > MethodRegime::Mixed.throughput());
        assert!(MethodRegime::Mixed.throughput() > MethodRegime::Par.throughput());
        assert!(MethodRegime::Par.throughput() > MethodRegime::Ethnographic.throughput());
    }
}
