//! The round-based agenda simulation.
//!
//! Each round, every researcher (a) picks a problem according to the
//! regime's discovery weights, (b) publishes on it with probability equal
//! to the regime's throughput. A publication:
//!
//! * marks the problem surfaced (first time only);
//! * increments its publication count (feeding the data-driven loop);
//! * nudges its funding and visibility upward (success breeds telemetry
//!   and grants — the instrumentation feedback the paper describes).

use crate::model::{ProblemSpace, SpaceConfig, StakeholderClass};
use crate::regime::MethodRegime;
use crate::{AgendaError, Result};
use humnet_resilience::{FaultHook, FaultKind, NoFaults};
use humnet_stats::Rng;
use humnet_telemetry::{Event, Telemetry};
use serde::{Deserialize, Serialize};

/// Configuration of an agenda run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgendaConfig {
    /// The problem space.
    pub space: SpaceConfig,
    /// Number of researchers.
    pub researchers: usize,
    /// Rounds to simulate (think "publication cycles").
    pub rounds: u32,
    /// Method regime of the researcher population.
    pub regime: MethodRegime,
    /// Per-publication funding boost to the problem.
    pub funding_feedback: f64,
    /// Per-publication visibility boost to the problem (instrumentation
    /// follows attention).
    pub visibility_feedback: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for AgendaConfig {
    fn default() -> Self {
        AgendaConfig {
            space: SpaceConfig::default(),
            researchers: 200,
            rounds: 60,
            regime: MethodRegime::DataDriven,
            funding_feedback: 0.01,
            visibility_feedback: 0.01,
            seed: 1,
        }
    }
}

/// A per-round snapshot of aggregate state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundSnapshot {
    /// Round index.
    pub round: u32,
    /// Problems surfaced so far.
    pub surfaced: usize,
    /// Marginalized problems surfaced so far.
    pub surfaced_marginalized: usize,
    /// Publications so far.
    pub publications: u64,
}

/// The simulation.
#[derive(Debug, Clone)]
pub struct AgendaSim {
    config: AgendaConfig,
    /// Problem space (public for inspection after running).
    pub space: ProblemSpace,
    rng: Rng,
    history: Vec<RoundSnapshot>,
    round: u32,
}

impl AgendaSim {
    /// Create a simulation.
    pub fn new(config: AgendaConfig) -> Result<Self> {
        if config.researchers == 0 {
            return Err(AgendaError::InvalidParameter("researchers must be >= 1"));
        }
        if config.rounds == 0 {
            return Err(AgendaError::InvalidParameter("rounds must be >= 1"));
        }
        if config.funding_feedback < 0.0 || config.visibility_feedback < 0.0 {
            return Err(AgendaError::InvalidParameter("feedback must be >= 0"));
        }
        let mut rng = Rng::new(config.seed);
        let space = ProblemSpace::generate(&config.space, &mut rng)?;
        Ok(AgendaSim {
            config,
            space,
            rng,
            history: Vec::new(),
            round: 0,
        })
    }

    /// Run all configured rounds and return the history.
    pub fn run(&mut self) -> Result<&[RoundSnapshot]> {
        self.run_with_faults(&mut NoFaults)
    }

    /// Run all configured rounds under a fault hook. Each round the hook is
    /// asked about [`FaultKind::ReviewerNoShow`] (a slice of the researcher
    /// population skips the round) and [`FaultKind::VolunteerDropout`] (a
    /// temporary funding-attention shock: feedback loops stall this round).
    /// Under [`NoFaults`] this is bit-identical to [`AgendaSim::run`].
    pub fn run_with_faults(&mut self, hook: &mut dyn FaultHook) -> Result<&[RoundSnapshot]> {
        self.run_instrumented(hook, &Telemetry::disabled())
    }

    /// [`AgendaSim::run_with_faults`] with telemetry: an `agenda.run` span,
    /// a per-round `agenda.step_ns` histogram, round/publication counters,
    /// and a final milestone event. Telemetry only observes — the simulated
    /// trajectory is bit-identical to the uninstrumented run.
    pub fn run_instrumented(
        &mut self,
        hook: &mut dyn FaultHook,
        tel: &Telemetry,
    ) -> Result<&[RoundSnapshot]> {
        let _span = tel.span("agenda.run");
        for _ in 0..self.config.rounds {
            let t0 = tel.start();
            self.step_with_faults(hook);
            tel.observe_since("agenda.step_ns", t0);
        }
        tel.counter("agenda.rounds", u64::from(self.config.rounds));
        if let Some(last) = self.history.last() {
            tel.counter("agenda.publications", last.publications);
            tel.gauge("agenda.surfaced", last.surfaced as f64);
            tel.event(
                Event::new(
                    "milestone",
                    format!(
                        "agenda: {} rounds, {} publications, {} problems surfaced",
                        self.config.rounds, last.publications, last.surfaced
                    ),
                )
                .with_step(u64::from(last.round)),
            );
        }
        Ok(&self.history)
    }

    /// Advance one round.
    pub fn step(&mut self) {
        self.step_with_faults(&mut NoFaults);
    }

    /// Advance one round under a fault hook.
    pub fn step_with_faults(&mut self, hook: &mut dyn FaultHook) {
        let regime = self.config.regime;
        let step = u64::from(self.round);
        // Reviewer no-shows thin this round's researcher pool.
        let active = match hook.inject(step, FaultKind::ReviewerNoShow) {
            Some(severity) => {
                let kept = (self.config.researchers as f64 * (1.0 - severity)).ceil() as usize;
                kept.max(1)
            }
            None => self.config.researchers,
        };
        // A volunteer-dropout spike freezes the funding/visibility feedback
        // loops for the round (nobody is around to chase the telemetry).
        let feedback_scale = match hook.inject(step, FaultKind::VolunteerDropout) {
            Some(severity) => 1.0 - severity,
            None => 1.0,
        };
        for _ in 0..active {
            // Under the Mixed regime, each researcher-round flips between
            // methods (a population half of whom work each way).
            let effective = if regime == MethodRegime::Mixed {
                if self.rng.chance(0.5) {
                    MethodRegime::DataDriven
                } else {
                    MethodRegime::Par
                }
            } else {
                regime
            };
            let weights: Vec<f64> = self
                .space
                .problems
                .iter()
                .map(|p| effective.discovery_weight(p))
                .collect();
            let pick = self.rng.choose_weighted(&weights);
            if self.rng.chance(effective.throughput()) {
                let p = &mut self.space.problems[pick];
                if p.surfaced_round.is_none() {
                    p.surfaced_round = Some(self.round);
                }
                p.publications += 1;
                p.funding = (p.funding + self.config.funding_feedback * feedback_scale).min(1.0);
                p.visibility =
                    (p.visibility + self.config.visibility_feedback * feedback_scale).min(1.0);
            }
        }
        let surfaced = self
            .space
            .problems
            .iter()
            .filter(|p| p.surfaced_round.is_some())
            .count();
        let surfaced_marginalized = self
            .space
            .problems
            .iter()
            .filter(|p| p.surfaced_round.is_some() && p.stakeholder.is_marginalized())
            .count();
        let publications = self
            .space
            .problems
            .iter()
            .map(|p| p.publications as u64)
            .sum();
        self.history.push(RoundSnapshot {
            round: self.round,
            surfaced,
            surfaced_marginalized,
            publications,
        });
        self.round += 1;
    }

    /// The recorded history.
    pub fn history(&self) -> &[RoundSnapshot] {
        &self.history
    }

    /// Count of marginalized problems in the space.
    pub fn marginalized_total(&self) -> usize {
        self.space
            .problems
            .iter()
            .filter(|p| p.stakeholder.is_marginalized())
            .count()
    }

    /// Publications per stakeholder class, in [`StakeholderClass::ALL`] order.
    pub fn attention(&self) -> Vec<(StakeholderClass, u64)> {
        StakeholderClass::ALL
            .iter()
            .map(|&c| {
                let pubs = self
                    .space
                    .problems
                    .iter()
                    .filter(|p| p.stakeholder == c)
                    .map(|p| p.publications as u64)
                    .sum();
                (c, pubs)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(regime: MethodRegime, seed: u64) -> AgendaSim {
        let mut cfg = AgendaConfig::default();
        cfg.regime = regime;
        cfg.seed = seed;
        let mut sim = AgendaSim::new(cfg).unwrap();
        sim.run().unwrap();
        sim
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = AgendaConfig::default();
        cfg.researchers = 0;
        assert!(AgendaSim::new(cfg).is_err());
        let mut cfg = AgendaConfig::default();
        cfg.rounds = 0;
        assert!(AgendaSim::new(cfg).is_err());
        let mut cfg = AgendaConfig::default();
        cfg.funding_feedback = -0.1;
        assert!(AgendaSim::new(cfg).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(MethodRegime::DataDriven, 7);
        let b = run(MethodRegime::DataDriven, 7);
        assert_eq!(a.history(), b.history());
        assert_eq!(a.attention(), b.attention());
    }

    #[test]
    fn history_is_monotone() {
        let sim = run(MethodRegime::DataDriven, 1);
        for w in sim.history().windows(2) {
            assert!(w[1].surfaced >= w[0].surfaced);
            assert!(w[1].publications >= w[0].publications);
            assert!(w[1].surfaced_marginalized >= w[0].surfaced_marginalized);
        }
        assert_eq!(sim.history().len(), 60);
    }

    #[test]
    fn data_driven_concentrates_on_funded_visible_problems() {
        let sim = run(MethodRegime::DataDriven, 3);
        let attention = sim.attention();
        let get = |c: StakeholderClass| {
            attention.iter().find(|&&(cl, _)| cl == c).unwrap().1 as f64
        };
        let hyper = get(StakeholderClass::Hyperscaler);
        let community = get(StakeholderClass::CommunityOperator);
        assert!(
            hyper > 3.0 * community,
            "hyperscaler attention {hyper} should dwarf community {community}"
        );
    }

    #[test]
    fn par_surfaces_marginalized_problems_faster() {
        let dd = run(MethodRegime::DataDriven, 5);
        let par = run(MethodRegime::Par, 5);
        let dd_frac =
            dd.history().last().unwrap().surfaced_marginalized as f64 / dd.marginalized_total() as f64;
        let par_frac = par.history().last().unwrap().surfaced_marginalized as f64
            / par.marginalized_total() as f64;
        assert!(
            par_frac > dd_frac,
            "par coverage {par_frac} should beat data-driven {dd_frac}"
        );
    }

    #[test]
    fn data_driven_publishes_more_in_total() {
        let dd = run(MethodRegime::DataDriven, 9);
        let eth = run(MethodRegime::Ethnographic, 9);
        assert!(
            dd.history().last().unwrap().publications
                > eth.history().last().unwrap().publications
        );
    }

    #[test]
    fn mixed_sits_between_extremes_on_marginalized_coverage() {
        // Average over a few seeds for robustness.
        let frac = |regime| {
            (0..4)
                .map(|s| {
                    let sim = run(regime, s);
                    sim.history().last().unwrap().surfaced_marginalized as f64
                        / sim.marginalized_total() as f64
                })
                .sum::<f64>()
                / 4.0
        };
        let dd = frac(MethodRegime::DataDriven);
        let mixed = frac(MethodRegime::Mixed);
        let par = frac(MethodRegime::Par);
        assert!(par >= mixed && mixed >= dd, "par {par} mixed {mixed} dd {dd}");
    }

    #[test]
    fn faulted_run_stays_valid_and_deterministic() {
        use humnet_resilience::{FaultPlan, FaultProfile, PlanHook};
        let faulted = |seed| {
            let mut cfg = AgendaConfig::default();
            cfg.seed = 7;
            let mut sim = AgendaSim::new(cfg).unwrap();
            let mut hook = PlanHook::new(FaultPlan::new(FaultProfile::Chaos, seed));
            sim.run_with_faults(&mut hook).unwrap();
            (sim, hook.faults_injected())
        };
        let (a, faults_a) = faulted(13);
        let (b, faults_b) = faulted(13);
        assert!(faults_a > 0, "chaos profile should inject faults");
        assert_eq!(faults_a, faults_b);
        assert_eq!(a.history(), b.history());
        // Degraded, not corrupted: history invariants still hold.
        for w in a.history().windows(2) {
            assert!(w[1].surfaced >= w[0].surfaced);
            assert!(w[1].publications >= w[0].publications);
        }
        // A no-fault hook reproduces the plain run exactly.
        let plain = run(MethodRegime::DataDriven, 7);
        let mut cfg = AgendaConfig::default();
        cfg.seed = 7;
        let mut hooked = AgendaSim::new(cfg).unwrap();
        hooked
            .run_with_faults(&mut PlanHook::new(FaultPlan::none()))
            .unwrap();
        assert_eq!(plain.history(), hooked.history());
    }

    #[test]
    fn feedback_grows_visibility_and_funding() {
        let sim = run(MethodRegime::DataDriven, 11);
        let hot = sim
            .space
            .problems
            .iter()
            .max_by_key(|p| p.publications)
            .unwrap();
        assert!(hot.publications > 0);
        // The most-published problem has had its attributes pushed up.
        assert!(hot.funding >= 0.9 || hot.visibility >= 0.9);
    }
}
