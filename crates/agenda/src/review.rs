//! Venue gatekeeping: which methods survive review where (experiment **T5**).
//!
//! §6.3.2 of the paper: "work that is grounded in stakeholder engagement,
//! community priorities, or qualitative insight often struggles to find its
//! place in traditional networking venues, which tend to emphasize system
//! performance, measurement scale, or novelty in tooling." And §6.4 asks
//! CFP authors to "explicitly encourage human methods".
//!
//! Model: a submission carries a contribution profile over four dimensions
//! (performance, scale, novelty, human insight); a venue scores it with a
//! weight vector plus reviewer noise and accepts the top fraction. Sweeping
//! the human-insight weight reproduces the gatekeeping claim and quantifies
//! what a CFP change buys.

use crate::{AgendaError, Result};
use humnet_stats::Rng;
use serde::{Deserialize, Serialize};

/// A submission's strengths per dimension, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContributionProfile {
    /// System performance wins.
    pub performance: f64,
    /// Measurement / deployment scale.
    pub scale: f64,
    /// Novelty of technique or tooling.
    pub novelty: f64,
    /// Human insight: grounded stakeholder knowledge.
    pub human_insight: f64,
}

impl ContributionProfile {
    /// Typical profile of a systems paper.
    pub fn systems_paper(rng: &mut Rng) -> Self {
        ContributionProfile {
            performance: rng.range_f64(0.6, 1.0),
            scale: rng.range_f64(0.5, 0.9),
            novelty: rng.range_f64(0.4, 0.9),
            human_insight: rng.range_f64(0.0, 0.2),
        }
    }

    /// Typical profile of a human-centered networking paper.
    pub fn human_centered_paper(rng: &mut Rng) -> Self {
        ContributionProfile {
            performance: rng.range_f64(0.0, 0.3),
            scale: rng.range_f64(0.1, 0.4),
            novelty: rng.range_f64(0.3, 0.8),
            human_insight: rng.range_f64(0.6, 1.0),
        }
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<()> {
        for v in [self.performance, self.scale, self.novelty, self.human_insight] {
            if !(0.0..=1.0).contains(&v) {
                return Err(AgendaError::InvalidParameter("profile values must be in [0,1]"));
            }
        }
        Ok(())
    }
}

/// A venue's review weight vector (need not be normalized).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VenueWeights {
    /// Weight on performance.
    pub performance: f64,
    /// Weight on scale.
    pub scale: f64,
    /// Weight on novelty.
    pub novelty: f64,
    /// Weight on human insight.
    pub human_insight: f64,
}

impl VenueWeights {
    /// The traditional systems-venue profile the paper criticizes.
    pub fn traditional_systems() -> Self {
        VenueWeights {
            performance: 0.4,
            scale: 0.3,
            novelty: 0.3,
            human_insight: 0.0,
        }
    }

    /// A CFP revised per §6.4: human insight is an explicit criterion.
    pub fn broadened(human_weight: f64) -> Self {
        let rest = (1.0 - human_weight).max(0.0);
        VenueWeights {
            performance: 0.4 * rest,
            scale: 0.3 * rest,
            novelty: 0.3 * rest,
            human_insight: human_weight,
        }
    }

    /// Deterministic score of a profile under these weights.
    pub fn score(&self, p: &ContributionProfile) -> f64 {
        self.performance * p.performance
            + self.scale * p.scale
            + self.novelty * p.novelty
            + self.human_insight * p.human_insight
    }
}

/// Configuration of a review simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReviewConfig {
    /// Number of systems-style submissions.
    pub systems_submissions: usize,
    /// Number of human-centered submissions.
    pub human_submissions: usize,
    /// Acceptance rate of the venue, in `(0, 1]`.
    pub acceptance_rate: f64,
    /// Reviewer noise (σ of a Gaussian added to each score).
    pub reviewer_noise: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for ReviewConfig {
    fn default() -> Self {
        ReviewConfig {
            systems_submissions: 150,
            human_submissions: 50,
            acceptance_rate: 0.2,
            reviewer_noise: 0.05,
            seed: 1,
        }
    }
}

/// Outcome of one review cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReviewOutcome {
    /// Acceptance rate among systems-style submissions.
    pub systems_acceptance: f64,
    /// Acceptance rate among human-centered submissions.
    pub human_acceptance: f64,
    /// Total papers accepted.
    pub accepted: usize,
}

/// Run one review cycle under the given venue weights.
pub fn run_review(config: &ReviewConfig, weights: &VenueWeights) -> Result<ReviewOutcome> {
    if config.systems_submissions + config.human_submissions == 0 {
        return Err(AgendaError::EmptyInput);
    }
    if !(0.0 < config.acceptance_rate && config.acceptance_rate <= 1.0) {
        return Err(AgendaError::InvalidParameter("acceptance_rate must be in (0,1]"));
    }
    if config.reviewer_noise < 0.0 {
        return Err(AgendaError::InvalidParameter("reviewer_noise must be >= 0"));
    }
    let mut rng = Rng::new(config.seed);
    // Generate submissions: kind 0 = systems, 1 = human-centered.
    let mut submissions: Vec<(u8, f64)> = Vec::new();
    for _ in 0..config.systems_submissions {
        let p = ContributionProfile::systems_paper(&mut rng);
        submissions.push((0, weights.score(&p) + rng.normal(0.0, config.reviewer_noise)));
    }
    for _ in 0..config.human_submissions {
        let p = ContributionProfile::human_centered_paper(&mut rng);
        submissions.push((1, weights.score(&p) + rng.normal(0.0, config.reviewer_noise)));
    }
    let total = submissions.len();
    let slots = ((total as f64 * config.acceptance_rate).round() as usize).clamp(1, total);
    submissions.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let accepted = &submissions[..slots];
    let sys_acc = accepted.iter().filter(|&&(k, _)| k == 0).count() as f64
        / config.systems_submissions.max(1) as f64;
    let hum_acc = accepted.iter().filter(|&&(k, _)| k == 1).count() as f64
        / config.human_submissions.max(1) as f64;
    Ok(ReviewOutcome {
        systems_acceptance: sys_acc,
        human_acceptance: hum_acc,
        accepted: slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traditional_venue_excludes_human_work() {
        let out = run_review(&ReviewConfig::default(), &VenueWeights::traditional_systems())
            .unwrap();
        assert!(
            out.systems_acceptance > 5.0 * out.human_acceptance.max(0.01),
            "systems {} vs human {}",
            out.systems_acceptance,
            out.human_acceptance
        );
    }

    #[test]
    fn broadened_cfp_raises_human_acceptance_monotonically() {
        let mut last = -1.0;
        for w in [0.0, 0.15, 0.3, 0.45] {
            let out = run_review(&ReviewConfig::default(), &VenueWeights::broadened(w)).unwrap();
            assert!(
                out.human_acceptance >= last - 0.02,
                "human acceptance should rise with weight {w}: {} after {last}",
                out.human_acceptance
            );
            last = out.human_acceptance;
        }
        assert!(last > 0.3, "substantial human-insight weight should admit human work");
    }

    #[test]
    fn zero_noise_is_deterministic() {
        let mut cfg = ReviewConfig::default();
        cfg.reviewer_noise = 0.0;
        let a = run_review(&cfg, &VenueWeights::traditional_systems()).unwrap();
        let b = run_review(&cfg, &VenueWeights::traditional_systems()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn acceptance_counts_add_up() {
        let cfg = ReviewConfig::default();
        let out = run_review(&cfg, &VenueWeights::broadened(0.3)).unwrap();
        let accepted_sys = out.systems_acceptance * cfg.systems_submissions as f64;
        let accepted_hum = out.human_acceptance * cfg.human_submissions as f64;
        assert!(((accepted_sys + accepted_hum) - out.accepted as f64).abs() < 1e-6);
        assert_eq!(out.accepted, 40); // 20% of 200
    }

    #[test]
    fn invalid_configs_rejected() {
        let w = VenueWeights::traditional_systems();
        let mut cfg = ReviewConfig::default();
        cfg.systems_submissions = 0;
        cfg.human_submissions = 0;
        assert!(run_review(&cfg, &w).is_err());
        let mut cfg = ReviewConfig::default();
        cfg.acceptance_rate = 0.0;
        assert!(run_review(&cfg, &w).is_err());
        let mut cfg = ReviewConfig::default();
        cfg.reviewer_noise = -1.0;
        assert!(run_review(&cfg, &w).is_err());
    }

    #[test]
    fn profile_validation() {
        let mut rng = Rng::new(1);
        ContributionProfile::systems_paper(&mut rng).validate().unwrap();
        ContributionProfile::human_centered_paper(&mut rng)
            .validate()
            .unwrap();
        let bad = ContributionProfile {
            performance: 1.5,
            scale: 0.0,
            novelty: 0.0,
            human_insight: 0.0,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn score_is_linear_in_weights() {
        let p = ContributionProfile {
            performance: 1.0,
            scale: 0.0,
            novelty: 0.0,
            human_insight: 0.5,
        };
        let w = VenueWeights {
            performance: 0.5,
            scale: 0.1,
            novelty: 0.1,
            human_insight: 0.3,
        };
        assert!((w.score(&p) - (0.5 + 0.15)).abs() < 1e-12);
    }
}
