//! Corpus analytics: the measurements experiments F2 and F7 are built on.

use crate::model::{Corpus, MethodTag, Region, VenueKind};
use crate::{CorpusError, Result};
use humnet_graph::{Direction, Graph};
use serde::{Deserialize, Serialize};

/// Prevalence of one method at one venue kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodPrevalence {
    /// Venue kind.
    pub kind: VenueKind,
    /// Method tag.
    pub method: MethodTag,
    /// Number of papers at this venue kind carrying the tag.
    pub count: usize,
    /// Total papers at this venue kind.
    pub total: usize,
    /// `count / total` (0 when the venue kind has no papers).
    pub rate: f64,
}

/// Method prevalence table over all `(venue kind, method)` pairs.
pub fn method_prevalence(corpus: &Corpus) -> Vec<MethodPrevalence> {
    let mut out = Vec::new();
    for kind in VenueKind::ALL {
        let papers = corpus.papers_in_kind(kind);
        let total = papers.len();
        for method in MethodTag::ALL {
            let count = papers.iter().filter(|p| p.methods.contains(&method)).count();
            out.push(MethodPrevalence {
                kind,
                method,
                count,
                total,
                rate: if total > 0 {
                    count as f64 / total as f64
                } else {
                    0.0
                },
            });
        }
    }
    out
}

/// Prevalence of one method at one venue kind for a single year.
pub fn method_rate_by_year(
    corpus: &Corpus,
    kind: VenueKind,
    method: MethodTag,
    year: u32,
) -> f64 {
    let papers: Vec<_> = corpus
        .papers_in_kind(kind)
        .into_iter()
        .filter(|p| p.year == year)
        .collect();
    if papers.is_empty() {
        return 0.0;
    }
    papers.iter().filter(|p| p.methods.contains(&method)).count() as f64 / papers.len() as f64
}

/// Paper counts per venue name.
pub fn papers_per_venue(corpus: &Corpus) -> Vec<(String, usize)> {
    let mut counts = vec![0usize; corpus.venues.len()];
    for p in &corpus.papers {
        counts[p.venue] += 1;
    }
    corpus
        .venues
        .iter()
        .map(|v| (v.name.clone(), counts[v.id]))
        .collect()
}

/// Share of authorship positions held by Global South-affiliated authors,
/// overall or restricted to one venue kind.
pub fn region_share(corpus: &Corpus, kind: Option<VenueKind>) -> Result<f64> {
    let mut south = 0usize;
    let mut total = 0usize;
    for p in &corpus.papers {
        if let Some(k) = kind {
            if corpus.venues[p.venue].kind != k {
                continue;
            }
        }
        for &a in &p.authors {
            total += 1;
            if corpus.authors[a].region == Region::GlobalSouth {
                south += 1;
            }
        }
    }
    if total == 0 {
        return Err(CorpusError::EmptyCorpus);
    }
    Ok(south as f64 / total as f64)
}

/// Gini coefficient of in-corpus citation counts.
pub fn citation_gini(corpus: &Corpus) -> Result<f64> {
    if corpus.papers.is_empty() {
        return Err(CorpusError::EmptyCorpus);
    }
    let counts: Vec<f64> = corpus
        .citation_counts()
        .into_iter()
        .map(|c| c as f64)
        .collect();
    humnet_stats::gini(&counts)
        .map_err(|_| CorpusError::InvalidParameter("citation counts degenerate"))
}

/// Build the directed citation graph: node per paper, edge `a → b` when `a`
/// cites `b`.
pub fn citation_graph(corpus: &Corpus) -> Graph {
    let mut g = Graph::new(Direction::Directed);
    g.add_nodes(corpus.papers.len());
    for p in &corpus.papers {
        for &c in &p.citations {
            g.add_edge(p.id, c).expect("validated corpus");
        }
    }
    g
}

/// Build the undirected coauthorship graph: node per author, edge per
/// coauthored paper (parallel edges collapse into weight).
pub fn coauthorship_graph(corpus: &Corpus) -> Graph {
    let mut g = Graph::undirected(corpus.authors.len());
    let mut seen = std::collections::HashSet::new();
    for p in &corpus.papers {
        for i in 0..p.authors.len() {
            for j in (i + 1)..p.authors.len() {
                let (a, b) = (p.authors[i].min(p.authors[j]), p.authors[i].max(p.authors[j]));
                if seen.insert((a, b)) {
                    g.add_edge(a, b).expect("validated corpus");
                }
            }
        }
    }
    g
}

/// Rank papers by PageRank over the citation graph (most influential
/// first). Returns `(paper_id, score)`.
pub fn influence_ranking(corpus: &Corpus, top: usize) -> Result<Vec<(usize, f64)>> {
    if corpus.papers.is_empty() {
        return Err(CorpusError::EmptyCorpus);
    }
    let g = citation_graph(corpus);
    let pr = humnet_graph::pagerank(&g, 0.85, 1e-10, 200)
        .map_err(|_| CorpusError::InvalidParameter("pagerank failed"))?;
    let mut ranked: Vec<(usize, f64)> = pr.into_iter().enumerate().collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    ranked.truncate(top);
    Ok(ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CorpusConfig;

    fn corpus() -> Corpus {
        let mut cfg = CorpusConfig::default();
        cfg.years = 4;
        for v in cfg.venues.iter_mut() {
            v.papers_per_year = 10;
        }
        cfg.author_pool = 100;
        cfg.generate(99).unwrap()
    }

    #[test]
    fn prevalence_table_covers_all_pairs() {
        let t = method_prevalence(&corpus());
        assert_eq!(t.len(), VenueKind::ALL.len() * MethodTag::ALL.len());
        for row in &t {
            assert!(row.rate >= 0.0 && row.rate <= 1.0);
            assert!(row.count <= row.total);
        }
    }

    #[test]
    fn prevalence_systems_vs_social() {
        let c = corpus();
        let t = method_prevalence(&c);
        let rate = |kind, method| {
            t.iter()
                .find(|r| r.kind == kind && r.method == method)
                .unwrap()
                .rate
        };
        assert!(
            rate(VenueKind::SocialScience, MethodTag::Ethnography)
                > rate(VenueKind::SystemsNetworking, MethodTag::Ethnography)
        );
        assert!(
            rate(VenueKind::SystemsNetworking, MethodTag::SystemBuilding)
                > rate(VenueKind::SocialScience, MethodTag::SystemBuilding)
        );
    }

    #[test]
    fn papers_per_venue_sums_to_total() {
        let c = corpus();
        let per: usize = papers_per_venue(&c).iter().map(|&(_, n)| n).sum();
        assert_eq!(per, c.papers.len());
    }

    #[test]
    fn region_share_bounds_and_ordering() {
        let c = corpus();
        let all = region_share(&c, None).unwrap();
        assert!((0.0..=1.0).contains(&all));
        // ICTD venues should over-represent the Global South relative to
        // systems venues (by construction in the generator).
        let ictd = region_share(&c, Some(VenueKind::Ictd)).unwrap();
        let sys = region_share(&c, Some(VenueKind::SystemsNetworking)).unwrap();
        assert!(ictd > sys, "ictd {ictd} vs systems {sys}");
    }

    #[test]
    fn citation_graph_shape() {
        let c = corpus();
        let g = citation_graph(&c);
        assert_eq!(g.node_count(), c.papers.len());
        let total_cites: usize = c.papers.iter().map(|p| p.citations.len()).sum();
        assert_eq!(g.edge_count(), total_cites);
        assert!(g.is_directed());
    }

    #[test]
    fn coauthorship_graph_is_undirected() {
        let c = corpus();
        let g = coauthorship_graph(&c);
        assert_eq!(g.node_count(), c.authors.len());
        assert!(!g.is_directed());
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn influence_ranking_sorted() {
        let c = corpus();
        let r = influence_ranking(&c, 10).unwrap();
        assert_eq!(r.len(), 10);
        for w in r.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn citation_gini_positive() {
        let g = citation_gini(&corpus()).unwrap();
        assert!(g > 0.0 && g < 1.0);
    }

    #[test]
    fn empty_corpus_errors() {
        let c = Corpus::default();
        assert!(region_share(&c, None).is_err());
        assert!(citation_gini(&c).is_err());
        assert!(influence_ranking(&c, 5).is_err());
    }

    #[test]
    fn method_rate_by_year_bounds() {
        let c = corpus();
        let (lo, hi) = c.year_range().unwrap();
        for y in lo..=hi {
            let r = method_rate_by_year(&c, VenueKind::HciCscw, MethodTag::Interviews, y);
            assert!((0.0..=1.0).contains(&r));
        }
        assert_eq!(
            method_rate_by_year(&c, VenueKind::HciCscw, MethodTag::Interviews, 1990),
            0.0
        );
    }
}
