//! Synthetic corpus generation.
//!
//! **Substitution note (DESIGN.md §1).** The paper's claims about venue
//! cultures cannot be tested against the real ACM DL offline. This
//! generator produces a corpus whose *distributions* follow the stylized
//! facts the bibliometrics literature agrees on:
//!
//! * citation counts are heavy-tailed (preferential attachment with
//!   tunable strength);
//! * method prevalence depends on venue kind (systems venues are dominated
//!   by measurement/system-building; HCI/ICTD venues by interviews,
//!   ethnography and participatory methods);
//! * positionality statements are common in social-science venues, present
//!   in HCI, and nearly absent in networking venues — the exact gap the
//!   paper's §4 laments — with a slow upward time trend;
//! * author affiliations skew Global North, more strongly at systems
//!   venues.
//!
//! Every knob is a public field of [`CorpusConfig`] so experiments can
//! ablate them.

use crate::model::{
    Author, Corpus, MethodTag, Paper, Region, Topic, Venue, VenueKind,
};
use crate::{CorpusError, Result};
use humnet_stats::Rng;
use humnet_text::MarkovModel;

/// Per-venue generation profile.
#[derive(Debug, Clone)]
pub struct VenueProfile {
    /// Venue display name.
    pub name: String,
    /// Methodological culture.
    pub kind: VenueKind,
    /// Papers accepted per year.
    pub papers_per_year: usize,
}

/// Configuration for corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// First publication year.
    pub start_year: u32,
    /// Number of years to generate.
    pub years: u32,
    /// Venues to generate.
    pub venues: Vec<VenueProfile>,
    /// Size of the author pool.
    pub author_pool: usize,
    /// Fraction of authors affiliated in the Global South.
    pub global_south_share: f64,
    /// Mean number of authors per paper (Poisson + 1, capped at 8).
    pub mean_authors: f64,
    /// Mean number of within-corpus citations per paper.
    pub mean_citations: f64,
    /// Preferential-attachment strength for citations: probability that a
    /// citation is drawn proportionally to in-degree (vs uniformly).
    pub preferential_strength: f64,
    /// Per-year additive drift in positionality probability (models the
    /// slow cultural shift the paper hopes to accelerate).
    pub positionality_trend_per_year: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            start_year: 2015,
            years: 10,
            venues: vec![
                VenueProfile {
                    name: "SYSNET".into(),
                    kind: VenueKind::SystemsNetworking,
                    papers_per_year: 40,
                },
                VenueProfile {
                    name: "NETMEAS".into(),
                    kind: VenueKind::Measurement,
                    papers_per_year: 30,
                },
                VenueProfile {
                    name: "HOTTOPICS".into(),
                    kind: VenueKind::HotTopics,
                    papers_per_year: 25,
                },
                VenueProfile {
                    name: "HUMANCOMP".into(),
                    kind: VenueKind::HciCscw,
                    papers_per_year: 40,
                },
                VenueProfile {
                    name: "DEVTECH".into(),
                    kind: VenueKind::Ictd,
                    papers_per_year: 15,
                },
                VenueProfile {
                    name: "NETSOC".into(),
                    kind: VenueKind::SocialScience,
                    papers_per_year: 10,
                },
            ],
            author_pool: 600,
            global_south_share: 0.18,
            mean_authors: 3.2,
            mean_citations: 6.0,
            preferential_strength: 0.75,
            positionality_trend_per_year: 0.004,
        }
    }
}

impl CorpusConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.years == 0 {
            return Err(CorpusError::InvalidParameter("years must be >= 1"));
        }
        if self.venues.is_empty() {
            return Err(CorpusError::InvalidParameter("need at least one venue"));
        }
        if self.author_pool == 0 {
            return Err(CorpusError::InvalidParameter("author pool must be nonempty"));
        }
        if !(0.0..=1.0).contains(&self.global_south_share) {
            return Err(CorpusError::InvalidParameter("global_south_share must be in [0,1]"));
        }
        if !(0.0..=1.0).contains(&self.preferential_strength) {
            return Err(CorpusError::InvalidParameter(
                "preferential_strength must be in [0,1]",
            ));
        }
        if self.mean_authors < 1.0 {
            return Err(CorpusError::InvalidParameter("mean_authors must be >= 1"));
        }
        if self.mean_citations < 0.0 {
            return Err(CorpusError::InvalidParameter("mean_citations must be >= 0"));
        }
        Ok(())
    }

    /// Generate a corpus deterministically from a seed.
    pub fn generate(&self, seed: u64) -> Result<Corpus> {
        self.generate_instrumented(seed, &humnet_telemetry::Telemetry::disabled())
    }

    /// [`CorpusConfig::generate`] with telemetry: a `corpus.generate`
    /// span, a `corpus.generate_ns` observation, a paper counter, and a
    /// milestone event. The generated corpus is identical.
    pub fn generate_instrumented(
        &self,
        seed: u64,
        tel: &humnet_telemetry::Telemetry,
    ) -> Result<Corpus> {
        let _span = tel.span("corpus.generate");
        let t0 = tel.start();
        let corpus = self.generate_inner(seed)?;
        tel.observe_since("corpus.generate_ns", t0);
        tel.counter("corpus.papers", corpus.papers.len() as u64);
        tel.counter("corpus.authors", corpus.authors.len() as u64);
        tel.event(humnet_telemetry::Event::new(
            "milestone",
            format!(
                "corpus.generate: {} papers, {} authors across {} venues",
                corpus.papers.len(),
                corpus.authors.len(),
                corpus.venues.len()
            ),
        ));
        Ok(corpus)
    }

    fn generate_inner(&self, seed: u64) -> Result<Corpus> {
        self.validate()?;
        let mut rng = Rng::new(seed);
        let venues: Vec<Venue> = self
            .venues
            .iter()
            .enumerate()
            .map(|(id, p)| Venue {
                id,
                name: p.name.clone(),
                kind: p.kind,
            })
            .collect();
        let authors = self.generate_authors(&mut rng);
        let markov = topic_markov_models();
        let mut papers: Vec<Paper> = Vec::new();
        let mut in_degree: Vec<u32> = Vec::new();
        for year_idx in 0..self.years {
            let year = self.start_year + year_idx;
            for (venue_id, profile) in self.venues.iter().enumerate() {
                for _ in 0..profile.papers_per_year {
                    let paper = self.generate_paper(
                        papers.len(),
                        year,
                        year_idx,
                        venue_id,
                        profile.kind,
                        &authors,
                        &papers,
                        &in_degree,
                        &markov,
                        &mut rng,
                    );
                    for &c in &paper.citations {
                        in_degree[c] += 1;
                    }
                    in_degree.push(0);
                    papers.push(paper);
                }
            }
        }
        let corpus = Corpus {
            venues,
            authors,
            papers,
        };
        corpus.validate()?;
        Ok(corpus)
    }

    fn generate_authors(&self, rng: &mut Rng) -> Vec<Author> {
        (0..self.author_pool)
            .map(|id| {
                let region = if rng.chance(self.global_south_share) {
                    Region::GlobalSouth
                } else {
                    Region::GlobalNorth
                };
                Author {
                    id,
                    name: format!("Author-{id:04}"),
                    region,
                    active_from: self.start_year.saturating_sub(rng.below(15) as u32),
                }
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_paper(
        &self,
        id: usize,
        year: u32,
        year_idx: u32,
        venue_id: usize,
        kind: VenueKind,
        authors: &[Author],
        prior_papers: &[Paper],
        in_degree: &[u32],
        markov: &[(Topic, MarkovModel)],
        rng: &mut Rng,
    ) -> Paper {
        let topic = sample_topic(kind, rng);
        let methods = sample_methods(kind, topic, year_idx, self.positionality_trend_per_year, rng);
        // Authors: 1 + Poisson(mean - 1), capped.
        let n_authors = (1 + rng.poisson(self.mean_authors - 1.0) as usize).min(8);
        let author_ids = sample_authors(authors, kind, n_authors, rng);
        let citations = sample_citations(
            prior_papers,
            in_degree,
            topic,
            self.mean_citations,
            self.preferential_strength,
            rng,
        );
        let title = make_title(topic, id, rng);
        let abstract_text = make_abstract(topic, &methods, markov, rng);
        // §5.1/§5.2 documentation behaviour: participatory work documents
        // partners most of the time; other human-centered work sometimes;
        // purely technical work rarely.
        let documents_partnerships = if methods.contains(&MethodTag::ParticipatoryActionResearch) {
            rng.chance(0.85)
        } else if methods.iter().any(MethodTag::is_human_centered) {
            rng.chance(0.45)
        } else {
            rng.chance(0.08)
        };
        let documents_conversations = if methods.contains(&MethodTag::Ethnography)
            || methods.contains(&MethodTag::Interviews)
        {
            rng.chance(0.70)
        } else if documents_partnerships {
            rng.chance(0.30)
        } else {
            rng.chance(0.04)
        };
        Paper {
            id,
            title,
            abstract_text,
            year,
            venue: venue_id,
            authors: author_ids,
            topic,
            methods,
            citations,
            documents_partnerships,
            documents_conversations,
        }
    }
}

/// Topic mixture by venue kind (weights over [`Topic::ALL`]).
fn topic_weights(kind: VenueKind) -> [f64; 8] {
    // Order: DatacenterPerf, CongestionControl, InterdomainRouting,
    //        InternetMeasurement, SecurityPrivacy, CommunityNetworks,
    //        PolicyGovernance, AccessEquity
    match kind {
        VenueKind::SystemsNetworking => [0.30, 0.22, 0.16, 0.12, 0.12, 0.04, 0.02, 0.02],
        VenueKind::Measurement => [0.06, 0.08, 0.22, 0.40, 0.14, 0.04, 0.04, 0.02],
        VenueKind::HotTopics => [0.18, 0.14, 0.16, 0.14, 0.14, 0.10, 0.08, 0.06],
        VenueKind::HciCscw => [0.01, 0.01, 0.02, 0.06, 0.14, 0.30, 0.16, 0.30],
        VenueKind::Ictd => [0.01, 0.02, 0.03, 0.06, 0.06, 0.42, 0.12, 0.28],
        VenueKind::SocialScience => [0.00, 0.00, 0.08, 0.06, 0.08, 0.18, 0.42, 0.18],
    }
}

fn sample_topic(kind: VenueKind, rng: &mut Rng) -> Topic {
    let w = topic_weights(kind);
    Topic::ALL[rng.choose_weighted(&w)]
}

/// Method priors per venue kind: `(tag, probability)` — a paper may carry
/// several tags. Positionality gets the per-year trend added on top.
fn method_priors(kind: VenueKind) -> &'static [(MethodTag, f64)] {
    match kind {
        VenueKind::SystemsNetworking => &[
            (MethodTag::SystemBuilding, 0.70),
            (MethodTag::Measurement, 0.55),
            (MethodTag::Simulation, 0.30),
            (MethodTag::Theory, 0.18),
            (MethodTag::Interviews, 0.03),
            (MethodTag::Ethnography, 0.004),
            (MethodTag::ParticipatoryActionResearch, 0.004),
            (MethodTag::Survey, 0.02),
            (MethodTag::Positionality, 0.002),
        ],
        VenueKind::Measurement => &[
            (MethodTag::Measurement, 0.92),
            (MethodTag::SystemBuilding, 0.25),
            (MethodTag::Simulation, 0.12),
            (MethodTag::Theory, 0.10),
            (MethodTag::Interviews, 0.05),
            (MethodTag::Ethnography, 0.005),
            (MethodTag::ParticipatoryActionResearch, 0.003),
            (MethodTag::Survey, 0.05),
            (MethodTag::Positionality, 0.003),
        ],
        VenueKind::HotTopics => &[
            (MethodTag::Measurement, 0.40),
            (MethodTag::SystemBuilding, 0.35),
            (MethodTag::Simulation, 0.25),
            (MethodTag::Theory, 0.25),
            (MethodTag::Interviews, 0.06),
            (MethodTag::Ethnography, 0.01),
            (MethodTag::ParticipatoryActionResearch, 0.01),
            (MethodTag::Survey, 0.04),
            (MethodTag::Positionality, 0.006),
        ],
        VenueKind::HciCscw => &[
            (MethodTag::Measurement, 0.15),
            (MethodTag::SystemBuilding, 0.25),
            (MethodTag::Simulation, 0.03),
            (MethodTag::Theory, 0.05),
            (MethodTag::Interviews, 0.65),
            (MethodTag::Ethnography, 0.25),
            (MethodTag::ParticipatoryActionResearch, 0.22),
            (MethodTag::Survey, 0.35),
            (MethodTag::Positionality, 0.18),
        ],
        VenueKind::Ictd => &[
            (MethodTag::Measurement, 0.20),
            (MethodTag::SystemBuilding, 0.30),
            (MethodTag::Simulation, 0.05),
            (MethodTag::Theory, 0.03),
            (MethodTag::Interviews, 0.70),
            (MethodTag::Ethnography, 0.35),
            (MethodTag::ParticipatoryActionResearch, 0.40),
            (MethodTag::Survey, 0.30),
            (MethodTag::Positionality, 0.25),
        ],
        VenueKind::SocialScience => &[
            (MethodTag::Measurement, 0.10),
            (MethodTag::SystemBuilding, 0.02),
            (MethodTag::Simulation, 0.02),
            (MethodTag::Theory, 0.30),
            (MethodTag::Interviews, 0.75),
            (MethodTag::Ethnography, 0.55),
            (MethodTag::ParticipatoryActionResearch, 0.20),
            (MethodTag::Survey, 0.25),
            (MethodTag::Positionality, 0.45),
        ],
    }
}

fn sample_methods(
    kind: VenueKind,
    topic: Topic,
    year_idx: u32,
    positionality_trend: f64,
    rng: &mut Rng,
) -> Vec<MethodTag> {
    let mut methods = Vec::new();
    for &(tag, base_p) in method_priors(kind) {
        let mut p = base_p;
        if tag == MethodTag::Positionality {
            p += positionality_trend * year_idx as f64;
        }
        // Community-network topics pull in human methods even at systems
        // venues (the long tradition the paper cites: CoLTE, CCM, SCN).
        if matches!(topic, Topic::CommunityNetworks | Topic::AccessEquity)
            && tag.is_human_centered()
        {
            p = (p * 3.0).min(0.9);
        }
        if rng.chance(p) {
            methods.push(tag);
        }
    }
    if methods.is_empty() {
        // Every paper uses *some* method; default to the venue's modal one.
        methods.push(match kind {
            VenueKind::SystemsNetworking => MethodTag::SystemBuilding,
            VenueKind::Measurement => MethodTag::Measurement,
            VenueKind::HotTopics => MethodTag::Theory,
            VenueKind::HciCscw | VenueKind::Ictd => MethodTag::Interviews,
            VenueKind::SocialScience => MethodTag::Theory,
        });
    }
    methods
}

fn sample_authors(
    authors: &[Author],
    kind: VenueKind,
    n: usize,
    rng: &mut Rng,
) -> Vec<usize> {
    // Systems venues under-sample Global South authors relative to the pool
    // (modelling the differential reachability the paper describes).
    let south_penalty = match kind {
        VenueKind::SystemsNetworking | VenueKind::Measurement => 0.35,
        VenueKind::HotTopics => 0.5,
        VenueKind::HciCscw => 0.8,
        VenueKind::Ictd | VenueKind::SocialScience => 1.6,
    };
    let weights: Vec<f64> = authors
        .iter()
        .map(|a| match a.region {
            Region::GlobalNorth => 1.0,
            Region::GlobalSouth => south_penalty,
        })
        .collect();
    let mut chosen: Vec<usize> = Vec::with_capacity(n);
    let mut guard = 0;
    while chosen.len() < n.min(authors.len()) && guard < 10_000 {
        let pick = rng.choose_weighted(&weights);
        if !chosen.contains(&pick) {
            chosen.push(pick);
        }
        guard += 1;
    }
    chosen
}

fn sample_citations(
    prior: &[Paper],
    in_degree: &[u32],
    topic: Topic,
    mean: f64,
    preferential: f64,
    rng: &mut Rng,
) -> Vec<usize> {
    if prior.is_empty() || mean <= 0.0 {
        return Vec::new();
    }
    let want = rng.poisson(mean) as usize;
    let mut cites: Vec<usize> = Vec::new();
    let mut guard = 0;
    while cites.len() < want.min(prior.len()) && guard < 10_000 {
        guard += 1;
        let candidate = if rng.chance(preferential) {
            // Preferential attachment: weight by in-degree + 1, doubled for
            // same-topic papers (homophily).
            let weights: Vec<f64> = prior
                .iter()
                .map(|p| {
                    let base = (in_degree[p.id] + 1) as f64;
                    if p.topic == topic {
                        base * 2.0
                    } else {
                        base
                    }
                })
                .collect();
            rng.choose_weighted(&weights)
        } else {
            rng.range(0, prior.len())
        };
        if !cites.contains(&candidate) {
            cites.push(candidate);
        }
    }
    cites
}

fn make_title(topic: Topic, id: usize, rng: &mut Rng) -> String {
    const PATTERNS: &[&str] = &[
        "Towards {}",
        "Rethinking {}",
        "Understanding {}",
        "A Study of {}",
        "Revisiting {}",
        "On the Practice of {}",
    ];
    let subject = match topic {
        Topic::DatacenterPerformance => "Datacenter Fabric Performance",
        Topic::CongestionControl => "Congestion Control at Scale",
        Topic::InterdomainRouting => "Interdomain Routing Policy",
        Topic::InternetMeasurement => "Internet-Wide Measurement",
        Topic::SecurityPrivacy => "Network Security and Privacy",
        Topic::CommunityNetworks => "Community-Run Networks",
        Topic::PolicyGovernance => "Internet Governance",
        Topic::AccessEquity => "Equitable Internet Access",
    };
    let pattern = rng.choose(PATTERNS);
    format!("{} [{}]", pattern.replace("{}", subject), id)
}

/// Seed text per topic used to train the abstract Markov models. Each seed
/// is written so generated abstracts contain topical vocabulary the
/// text-mining pipelines can pick up.
fn topic_seed(topic: Topic) -> &'static str {
    match topic {
        Topic::DatacenterPerformance => {
            "We design a datacenter fabric that improves tail latency. \
             The fabric balances load across switches. We evaluate throughput \
             under production workloads. Our design reduces flow completion time."
        }
        Topic::CongestionControl => {
            "We propose a congestion control algorithm for wide area transport. \
             The algorithm reacts to delay signals. We evaluate fairness and \
             throughput against deployed schemes. The protocol converges quickly."
        }
        Topic::InterdomainRouting => {
            "We analyze interdomain routing policies between autonomous systems. \
             Peering decisions shape the paths that traffic takes. We study route \
             export rules at exchanges. Business relationships constrain path selection."
        }
        Topic::InternetMeasurement => {
            "We measure the internet from distributed vantage points. \
             Our traces capture topology and performance over time. We infer \
             structure from measurement data. The dataset spans many networks."
        }
        Topic::SecurityPrivacy => {
            "We study attacks against network infrastructure. Our analysis \
             reveals vulnerabilities in deployed protocols. We propose defenses \
             that preserve privacy. The system detects anomalous behavior."
        }
        Topic::CommunityNetworks => {
            "Community networks are built and operated by local residents. \
             Volunteers maintain wireless infrastructure in rural areas. \
             We deploy low-cost equipment with community partners. Local operators \
             sustain the network through shared governance."
        }
        Topic::PolicyGovernance => {
            "Internet governance shapes interconnection between networks. \
             Regulators mandate peering at public exchanges. Policy decisions \
             affect how operators interconnect. Institutional arrangements \
             constrain infrastructure deployment."
        }
        Topic::AccessEquity => {
            "Affordable access remains unevenly distributed across regions. \
             Underserved communities face barriers to connectivity. We examine \
             digital equity programs with local stakeholders. Access gaps \
             reflect economic and geographic marginality."
        }
    }
}

/// Method signal sentences appended to abstracts so that text pipelines can
/// detect methods from the prose itself (not just the structured tags).
fn method_sentence(tag: MethodTag) -> &'static str {
    match tag {
        MethodTag::Measurement => "We analyze large-scale traces collected over months.",
        MethodTag::SystemBuilding => "We implement and deploy a prototype system.",
        MethodTag::Simulation => "We evaluate the design in simulation.",
        MethodTag::Theory => "We prove properties of the model analytically.",
        MethodTag::Interviews => {
            "We conducted semi-structured interviews with operators and users."
        }
        MethodTag::Ethnography => {
            "Our ethnographic fieldwork combined participant observation with site visits."
        }
        MethodTag::ParticipatoryActionResearch => {
            "We worked with community partners through participatory action research \
             to define the problem and iterate on solutions."
        }
        MethodTag::Survey => "We surveyed practitioners about their operational practices.",
        MethodTag::Positionality => {
            "We situate ourselves in this work: the authors acknowledge their \
             positionality and how it shapes the research questions."
        }
    }
}

/// Train one Markov model per topic (done once per corpus generation).
fn topic_markov_models() -> Vec<(Topic, MarkovModel)> {
    Topic::ALL
        .iter()
        .map(|&t| {
            let mut m = MarkovModel::new();
            m.train_text(topic_seed(t));
            (t, m)
        })
        .collect()
}

fn make_abstract(
    topic: Topic,
    methods: &[MethodTag],
    markov: &[(Topic, MarkovModel)],
    rng: &mut Rng,
) -> String {
    let model = &markov
        .iter()
        .find(|(t, _)| *t == topic)
        .expect("all topics trained")
        .1;
    let mut text = model.generate_paragraph(3, 14, rng);
    for &m in methods {
        text.push(' ');
        text.push_str(method_sentence(m));
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CorpusConfig {
        let mut cfg = CorpusConfig::default();
        cfg.years = 3;
        for v in cfg.venues.iter_mut() {
            v.papers_per_year = 8;
        }
        cfg.author_pool = 80;
        cfg
    }

    #[test]
    fn default_config_is_valid() {
        CorpusConfig::default().validate().unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_config();
        let a = cfg.generate(42).unwrap();
        let b = cfg.generate(42).unwrap();
        assert_eq!(a, b);
        let c = cfg.generate(43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn generated_corpus_validates() {
        let corpus = small_config().generate(1).unwrap();
        corpus.validate().unwrap();
        assert_eq!(corpus.papers.len(), 3 * 6 * 8);
        assert_eq!(corpus.venues.len(), 6);
    }

    #[test]
    fn citations_point_backwards() {
        let corpus = small_config().generate(2).unwrap();
        for p in &corpus.papers {
            for &c in &p.citations {
                assert!(c < p.id, "paper {} cites future paper {}", p.id, c);
            }
        }
    }

    #[test]
    fn positionality_is_rare_at_networking_venues() {
        let corpus = CorpusConfig::default().generate(7).unwrap();
        let rate = |kind: VenueKind| {
            let papers = corpus.papers_in_kind(kind);
            papers.iter().filter(|p| p.has_positionality()).count() as f64
                / papers.len().max(1) as f64
        };
        let sys = rate(VenueKind::SystemsNetworking);
        let hci = rate(VenueKind::HciCscw);
        let soc = rate(VenueKind::SocialScience);
        assert!(sys < 0.05, "systems positionality rate {sys}");
        assert!(hci > 0.10, "hci positionality rate {hci}");
        assert!(soc > hci, "social science {soc} should exceed hci {hci}");
    }

    #[test]
    fn human_methods_cluster_at_human_venues() {
        let corpus = CorpusConfig::default().generate(11).unwrap();
        let hc_rate = |kind: VenueKind| {
            let papers = corpus.papers_in_kind(kind);
            papers.iter().filter(|p| p.is_human_centered()).count() as f64
                / papers.len().max(1) as f64
        };
        assert!(hc_rate(VenueKind::HciCscw) > 0.6);
        assert!(hc_rate(VenueKind::SystemsNetworking) < 0.35);
    }

    #[test]
    fn citation_distribution_is_heavy_tailed() {
        let corpus = CorpusConfig::default().generate(13).unwrap();
        let counts: Vec<f64> = corpus
            .citation_counts()
            .into_iter()
            .map(|c| c as f64)
            .collect();
        let g = humnet_stats::gini(&counts).unwrap();
        assert!(g > 0.5, "citation gini {g} should be high");
    }

    #[test]
    fn abstracts_carry_method_signals() {
        let corpus = small_config().generate(17).unwrap();
        for p in &corpus.papers {
            if p.has_positionality() {
                assert!(
                    p.abstract_text.contains("positionality"),
                    "positionality paper missing signal: {}",
                    p.abstract_text
                );
            }
            if p.methods.contains(&MethodTag::Ethnography) {
                assert!(p.abstract_text.contains("ethnographic"));
            }
        }
    }

    #[test]
    fn every_paper_has_methods_and_authors() {
        let corpus = small_config().generate(19).unwrap();
        for p in &corpus.papers {
            assert!(!p.methods.is_empty());
            assert!(!p.authors.is_empty());
            assert!(p.authors.len() <= 8);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = CorpusConfig::default();
        cfg.years = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = CorpusConfig::default();
        cfg.venues.clear();
        assert!(cfg.validate().is_err());
        let mut cfg = CorpusConfig::default();
        cfg.preferential_strength = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = CorpusConfig::default();
        cfg.mean_authors = 0.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn global_south_share_approximates_config() {
        let mut cfg = small_config();
        cfg.author_pool = 2000;
        cfg.global_south_share = 0.3;
        let corpus = cfg.generate(23).unwrap();
        let south = corpus
            .authors
            .iter()
            .filter(|a| a.region == Region::GlobalSouth)
            .count() as f64
            / corpus.authors.len() as f64;
        assert!((south - 0.3).abs() < 0.05, "south share {south}");
    }
}
