//! The publication data model: papers, authors, venues, and the tag
//! taxonomies the paper's argument turns on.

use serde::{Deserialize, Serialize};

/// Broad world-region of an institution. The paper's §1 argues that
/// "linguistic and geopolitical marginality" is rendered invisible; the
/// corpus tracks region to let experiments measure that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// North America, Europe, East Asia research powerhouses.
    GlobalNorth,
    /// Latin America, Africa, South/Southeast Asia, Oceania (ex. AU/NZ).
    GlobalSouth,
}

/// Kinds of publication venue, by methodological culture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VenueKind {
    /// Top systems/networking venues (SIGCOMM, NSDI style).
    SystemsNetworking,
    /// Measurement venues (IMC style).
    Measurement,
    /// Hot-topics workshops (HotNets style).
    HotTopics,
    /// Human-computer interaction venues (CHI, CSCW style).
    HciCscw,
    /// Information & communication technologies for development (ICTD style).
    Ictd,
    /// Social-science and STS journals.
    SocialScience,
}

impl VenueKind {
    /// All venue kinds, for iteration in tables.
    pub const ALL: [VenueKind; 6] = [
        VenueKind::SystemsNetworking,
        VenueKind::Measurement,
        VenueKind::HotTopics,
        VenueKind::HciCscw,
        VenueKind::Ictd,
        VenueKind::SocialScience,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            VenueKind::SystemsNetworking => "systems-networking",
            VenueKind::Measurement => "measurement",
            VenueKind::HotTopics => "hot-topics",
            VenueKind::HciCscw => "hci-cscw",
            VenueKind::Ictd => "ictd",
            VenueKind::SocialScience => "social-science",
        }
    }

    /// True for the venues the paper calls "traditional networking venues".
    pub fn is_networking(&self) -> bool {
        matches!(
            self,
            VenueKind::SystemsNetworking | VenueKind::Measurement | VenueKind::HotTopics
        )
    }
}

/// Research method tags attached to papers. The three the paper advocates
/// ([`MethodTag::ParticipatoryActionResearch`], [`MethodTag::Ethnography`],
/// [`MethodTag::Positionality`]) are the focus of the audit experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MethodTag {
    /// Large-scale measurement / trace analysis.
    Measurement,
    /// Building and evaluating a system artifact.
    SystemBuilding,
    /// Simulation or emulation.
    Simulation,
    /// Mathematical modelling / theory.
    Theory,
    /// Semi-structured or structured interviews.
    Interviews,
    /// Ethnographic fieldwork (traditional, patchwork, or rapid).
    Ethnography,
    /// Participatory action research / participatory design.
    ParticipatoryActionResearch,
    /// Survey instruments.
    Survey,
    /// The paper includes a positionality/reflexivity statement.
    Positionality,
}

impl MethodTag {
    /// All method tags.
    pub const ALL: [MethodTag; 9] = [
        MethodTag::Measurement,
        MethodTag::SystemBuilding,
        MethodTag::Simulation,
        MethodTag::Theory,
        MethodTag::Interviews,
        MethodTag::Ethnography,
        MethodTag::ParticipatoryActionResearch,
        MethodTag::Survey,
        MethodTag::Positionality,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            MethodTag::Measurement => "measurement",
            MethodTag::SystemBuilding => "system-building",
            MethodTag::Simulation => "simulation",
            MethodTag::Theory => "theory",
            MethodTag::Interviews => "interviews",
            MethodTag::Ethnography => "ethnography",
            MethodTag::ParticipatoryActionResearch => "par",
            MethodTag::Survey => "survey",
            MethodTag::Positionality => "positionality",
        }
    }

    /// True for the qualitative, human-centered methods the paper advocates.
    pub fn is_human_centered(&self) -> bool {
        matches!(
            self,
            MethodTag::Interviews
                | MethodTag::Ethnography
                | MethodTag::ParticipatoryActionResearch
                | MethodTag::Survey
                | MethodTag::Positionality
        )
    }
}

/// Research topics, keyed to the stakeholder whose problems they serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topic {
    /// Datacenter performance and fabric design.
    DatacenterPerformance,
    /// Congestion control and transport protocols.
    CongestionControl,
    /// Interdomain routing and BGP.
    InterdomainRouting,
    /// Internet measurement and topology.
    InternetMeasurement,
    /// Network security and privacy.
    SecurityPrivacy,
    /// Community / last-mile / rural networks.
    CommunityNetworks,
    /// Internet governance, policy, and regulation.
    PolicyGovernance,
    /// Access, affordability, and digital equity.
    AccessEquity,
}

impl Topic {
    /// All topics.
    pub const ALL: [Topic; 8] = [
        Topic::DatacenterPerformance,
        Topic::CongestionControl,
        Topic::InterdomainRouting,
        Topic::InternetMeasurement,
        Topic::SecurityPrivacy,
        Topic::CommunityNetworks,
        Topic::PolicyGovernance,
        Topic::AccessEquity,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Topic::DatacenterPerformance => "datacenter-performance",
            Topic::CongestionControl => "congestion-control",
            Topic::InterdomainRouting => "interdomain-routing",
            Topic::InternetMeasurement => "internet-measurement",
            Topic::SecurityPrivacy => "security-privacy",
            Topic::CommunityNetworks => "community-networks",
            Topic::PolicyGovernance => "policy-governance",
            Topic::AccessEquity => "access-equity",
        }
    }

    /// The stakeholder class whose operational reality the topic mostly
    /// reflects (a deliberately coarse mapping used by the attention
    /// experiments).
    pub fn primary_stakeholder(&self) -> StakeholderClass {
        match self {
            Topic::DatacenterPerformance | Topic::CongestionControl => {
                StakeholderClass::Hyperscaler
            }
            Topic::InterdomainRouting => StakeholderClass::TransitIsp,
            Topic::InternetMeasurement | Topic::SecurityPrivacy => {
                StakeholderClass::ResearchCommunity
            }
            Topic::CommunityNetworks | Topic::AccessEquity => {
                StakeholderClass::CommunityOperator
            }
            Topic::PolicyGovernance => StakeholderClass::Regulator,
        }
    }
}

/// Classes of Internet stakeholder, from the paper's §1 framing
/// ("hyperscalers or government agencies" vs "those managing fragile
/// last-mile networks").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StakeholderClass {
    /// Hyperscale cloud/content operators.
    Hyperscaler,
    /// Commercial transit and access ISPs.
    TransitIsp,
    /// The research community itself (testbeds, measurement platforms).
    ResearchCommunity,
    /// Community / municipal / rural network operators.
    CommunityOperator,
    /// Regulators and policy bodies.
    Regulator,
    /// End users at large.
    EndUsers,
}

impl StakeholderClass {
    /// All stakeholder classes.
    pub const ALL: [StakeholderClass; 6] = [
        StakeholderClass::Hyperscaler,
        StakeholderClass::TransitIsp,
        StakeholderClass::ResearchCommunity,
        StakeholderClass::CommunityOperator,
        StakeholderClass::Regulator,
        StakeholderClass::EndUsers,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            StakeholderClass::Hyperscaler => "hyperscaler",
            StakeholderClass::TransitIsp => "transit-isp",
            StakeholderClass::ResearchCommunity => "research-community",
            StakeholderClass::CommunityOperator => "community-operator",
            StakeholderClass::Regulator => "regulator",
            StakeholderClass::EndUsers => "end-users",
        }
    }

    /// The paper's "marginalized" stakeholders: those whose problems it
    /// says are rendered invisible.
    pub fn is_marginalized(&self) -> bool {
        matches!(
            self,
            StakeholderClass::CommunityOperator | StakeholderClass::EndUsers
        )
    }
}

/// A publication venue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Venue {
    /// Dense id within the corpus.
    pub id: usize,
    /// Display name, e.g. "SYSNET".
    pub name: String,
    /// Methodological culture.
    pub kind: VenueKind,
}

/// An author.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Author {
    /// Dense id within the corpus.
    pub id: usize,
    /// Display name.
    pub name: String,
    /// Region of the author's institution.
    pub region: Region,
    /// Career start year (first possible publication year).
    pub active_from: u32,
}

/// A paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Paper {
    /// Dense id within the corpus.
    pub id: usize,
    /// Title.
    pub title: String,
    /// Abstract text (synthetic).
    pub abstract_text: String,
    /// Publication year.
    pub year: u32,
    /// Venue id.
    pub venue: usize,
    /// Author ids, in byline order.
    pub authors: Vec<usize>,
    /// Primary topic.
    pub topic: Topic,
    /// Methods used.
    pub methods: Vec<MethodTag>,
    /// Ids of papers this paper cites (within-corpus only).
    pub citations: Vec<usize>,
    /// Whether the paper documents its practitioner partnerships (§5.1).
    pub documents_partnerships: bool,
    /// Whether the paper reports its informative conversations (§5.2).
    pub documents_conversations: bool,
}

impl Paper {
    /// True if the paper carries a positionality statement.
    pub fn has_positionality(&self) -> bool {
        self.methods.contains(&MethodTag::Positionality)
    }

    /// True if any human-centered method is used.
    pub fn is_human_centered(&self) -> bool {
        self.methods.iter().any(MethodTag::is_human_centered)
    }
}

/// A full corpus: venues, authors, papers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    /// All venues.
    pub venues: Vec<Venue>,
    /// All authors.
    pub authors: Vec<Author>,
    /// All papers, sorted by (year, id).
    pub papers: Vec<Paper>,
}

impl Corpus {
    /// Validate internal referential integrity. Returns the first dangling
    /// reference found, if any.
    pub fn validate(&self) -> crate::Result<()> {
        for (i, v) in self.venues.iter().enumerate() {
            if v.id != i {
                return Err(crate::CorpusError::InvalidParameter("venue ids must be dense"));
            }
        }
        for (i, a) in self.authors.iter().enumerate() {
            if a.id != i {
                return Err(crate::CorpusError::InvalidParameter("author ids must be dense"));
            }
        }
        for (i, p) in self.papers.iter().enumerate() {
            if p.id != i {
                return Err(crate::CorpusError::InvalidParameter("paper ids must be dense"));
            }
            if p.venue >= self.venues.len() {
                return Err(crate::CorpusError::DanglingReference("venue", p.venue));
            }
            if p.authors.is_empty() {
                return Err(crate::CorpusError::InvalidParameter("paper must have authors"));
            }
            for &a in &p.authors {
                if a >= self.authors.len() {
                    return Err(crate::CorpusError::DanglingReference("author", a));
                }
            }
            for &c in &p.citations {
                if c >= self.papers.len() {
                    return Err(crate::CorpusError::DanglingReference("paper", c));
                }
                if c == p.id {
                    return Err(crate::CorpusError::InvalidParameter("self-citation"));
                }
            }
        }
        Ok(())
    }

    /// Papers published at a given venue kind.
    pub fn papers_in_kind(&self, kind: VenueKind) -> Vec<&Paper> {
        self.papers
            .iter()
            .filter(|p| self.venues[p.venue].kind == kind)
            .collect()
    }

    /// Year range `(min, max)` of the corpus, or `None` when empty.
    pub fn year_range(&self) -> Option<(u32, u32)> {
        let min = self.papers.iter().map(|p| p.year).min()?;
        let max = self.papers.iter().map(|p| p.year).max()?;
        Some((min, max))
    }

    /// In-corpus citation counts per paper.
    pub fn citation_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.papers.len()];
        for p in &self.papers {
            for &c in &p.citations {
                counts[c] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Corpus {
        Corpus {
            venues: vec![Venue {
                id: 0,
                name: "SYSNET".into(),
                kind: VenueKind::SystemsNetworking,
            }],
            authors: vec![Author {
                id: 0,
                name: "A. Researcher".into(),
                region: Region::GlobalNorth,
                active_from: 2015,
            }],
            papers: vec![
                Paper {
                    id: 0,
                    title: "Fast Fabrics".into(),
                    abstract_text: "We measure the fabric.".into(),
                    year: 2020,
                    venue: 0,
                    authors: vec![0],
                    topic: Topic::DatacenterPerformance,
                    methods: vec![MethodTag::Measurement],
                    citations: vec![],
                    documents_partnerships: false,
                    documents_conversations: false,
                },
                Paper {
                    id: 1,
                    title: "Faster Fabrics".into(),
                    abstract_text: "We measure the fabric again.".into(),
                    year: 2021,
                    venue: 0,
                    authors: vec![0],
                    topic: Topic::DatacenterPerformance,
                    methods: vec![MethodTag::Measurement, MethodTag::SystemBuilding],
                    citations: vec![0],
                    documents_partnerships: true,
                    documents_conversations: false,
                },
            ],
        }
    }

    #[test]
    fn validate_accepts_consistent_corpus() {
        tiny_corpus().validate().unwrap();
    }

    #[test]
    fn validate_rejects_dangling_venue() {
        let mut c = tiny_corpus();
        c.papers[0].venue = 9;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_dangling_citation() {
        let mut c = tiny_corpus();
        c.papers[1].citations.push(42);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_self_citation() {
        let mut c = tiny_corpus();
        c.papers[1].citations = vec![1];
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_authors() {
        let mut c = tiny_corpus();
        c.papers[0].authors.clear();
        assert!(c.validate().is_err());
    }

    #[test]
    fn citation_counts() {
        let c = tiny_corpus();
        assert_eq!(c.citation_counts(), vec![1, 0]);
    }

    #[test]
    fn year_range() {
        assert_eq!(tiny_corpus().year_range(), Some((2020, 2021)));
        assert_eq!(Corpus::default().year_range(), None);
    }

    #[test]
    fn topic_stakeholder_mapping_is_total() {
        for t in Topic::ALL {
            let _ = t.primary_stakeholder(); // must not panic
            assert!(!t.label().is_empty());
        }
    }

    #[test]
    fn human_centered_tags() {
        assert!(MethodTag::Ethnography.is_human_centered());
        assert!(MethodTag::Positionality.is_human_centered());
        assert!(!MethodTag::Measurement.is_human_centered());
        assert!(!MethodTag::Theory.is_human_centered());
    }

    #[test]
    fn marginalized_stakeholders() {
        assert!(StakeholderClass::CommunityOperator.is_marginalized());
        assert!(!StakeholderClass::Hyperscaler.is_marginalized());
    }

    #[test]
    fn venue_kind_networking_split() {
        assert!(VenueKind::SystemsNetworking.is_networking());
        assert!(VenueKind::HotTopics.is_networking());
        assert!(!VenueKind::HciCscw.is_networking());
        assert!(!VenueKind::SocialScience.is_networking());
    }

    #[test]
    fn paper_flags() {
        let c = tiny_corpus();
        assert!(!c.papers[0].has_positionality());
        assert!(!c.papers[0].is_human_centered());
    }

    #[test]
    fn papers_in_kind_filters() {
        let c = tiny_corpus();
        assert_eq!(c.papers_in_kind(VenueKind::SystemsNetworking).len(), 2);
        assert!(c.papers_in_kind(VenueKind::HciCscw).is_empty());
    }
}
