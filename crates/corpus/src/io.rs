//! Corpus serialization: JSON round-trips and CSV export.

use crate::model::Corpus;
use crate::Result;
use std::io::Write;
use std::path::Path;

/// Serialize a corpus to a JSON string.
pub fn to_json(corpus: &Corpus) -> Result<String> {
    Ok(serde_json::to_string(corpus)?)
}

/// Deserialize a corpus from a JSON string and validate it.
pub fn from_json(json: &str) -> Result<Corpus> {
    let corpus: Corpus = serde_json::from_str(json)?;
    corpus.validate()?;
    Ok(corpus)
}

/// Write a corpus to a JSON file.
pub fn save_json(corpus: &Corpus, path: &Path) -> Result<()> {
    let json = to_json(corpus)?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    Ok(())
}

/// Read a corpus from a JSON file.
pub fn load_json(path: &Path) -> Result<Corpus> {
    let json = std::fs::read_to_string(path)?;
    from_json(&json)
}

/// Export the paper table as CSV (one row per paper; methods joined with
/// `;`). Fields containing commas or quotes are quoted per RFC 4180.
pub fn papers_to_csv(corpus: &Corpus) -> String {
    let mut out = String::from(
        "id,year,venue,venue_kind,topic,n_authors,n_citations,methods,\
         documents_partnerships,documents_conversations,title\n",
    );
    for p in &corpus.papers {
        let venue = &corpus.venues[p.venue];
        let methods = p
            .methods
            .iter()
            .map(|m| m.label())
            .collect::<Vec<_>>()
            .join(";");
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            p.id,
            p.year,
            csv_field(&venue.name),
            venue.kind.label(),
            p.topic.label(),
            p.authors.len(),
            p.citations.len(),
            methods,
            p.documents_partnerships,
            p.documents_conversations,
            csv_field(&p.title),
        ));
    }
    out
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CorpusConfig;

    fn corpus() -> Corpus {
        let mut cfg = CorpusConfig::default();
        cfg.years = 2;
        for v in cfg.venues.iter_mut() {
            v.papers_per_year = 4;
        }
        cfg.author_pool = 30;
        cfg.generate(5).unwrap()
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let c = corpus();
        let json = to_json(&c).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn from_json_validates() {
        // Corrupt a venue reference.
        let c = corpus();
        let mut json: serde_json::Value = serde_json::from_str(&to_json(&c).unwrap()).unwrap();
        json["papers"][0]["venue"] = serde_json::json!(999);
        assert!(from_json(&json.to_string()).is_err());
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{}").is_err() || from_json("{}").is_ok());
        // '{}' deserializes to empty corpus via defaults; that's valid.
    }

    #[test]
    fn file_round_trip() {
        let c = corpus();
        let dir = std::env::temp_dir().join("humnet_corpus_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.json");
        save_json(&c, &path).unwrap();
        let back = load_json(&path).unwrap();
        assert_eq!(c, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_has_header_and_rows() {
        let c = corpus();
        let csv = papers_to_csv(&c);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), c.papers.len() + 1);
        assert!(lines[0].starts_with("id,year,venue"));
        // Every data row has the right number of top-level commas when no
        // quoted fields contain commas; just sanity-check the first.
        assert!(lines[1].split(',').count() >= 11);
    }

    #[test]
    fn csv_quotes_fields_with_commas() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
