//! # humnet-corpus
//!
//! Bibliometric corpus substrate for the `humnet` toolkit.
//!
//! The paper this toolkit reproduces makes claims about the *sociology of
//! publication* in networking: positionality statements are vanishingly rare
//! at systems venues, partnerships go undocumented, human-centered work is
//! pushed to HCI venues. Testing those claims requires a publication corpus.
//! Scraping the ACM DL is not possible offline, so this crate provides:
//!
//! * a typed data model of papers, authors, venues, institutions, regions,
//!   topics and method tags ([`model`]);
//! * a **synthetic corpus generator** ([`generator`]) calibrated to
//!   well-known stylized facts (power-law citations via preferential
//!   attachment, venue-dependent method prevalence, Global North dominance
//!   of author affiliations);
//! * corpus analytics ([`analysis`]) — method prevalence tables, citation
//!   and coauthorship graphs, inequality metrics;
//! * JSON/CSV import and export ([`io`]).
//!
//! The generator's parameters are all public ([`generator::CorpusConfig`]),
//! so experiments can sweep them; every corpus is deterministic given a
//! seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod generator;
pub mod io;
pub mod model;

pub use analysis::{
    citation_gini, citation_graph, coauthorship_graph, influence_ranking, method_prevalence,
    method_rate_by_year, papers_per_venue, region_share, MethodPrevalence,
};
pub use generator::{CorpusConfig, VenueProfile};
pub use model::{
    Author, Corpus, MethodTag, Paper, Region, StakeholderClass, Topic, Venue, VenueKind,
};

/// Errors produced by corpus routines.
#[derive(Debug)]
pub enum CorpusError {
    /// The corpus is empty but the operation requires papers.
    EmptyCorpus,
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// A referenced entity id does not exist.
    DanglingReference(&'static str, usize),
    /// Serialization or deserialization failed.
    Serde(String),
    /// An I/O error occurred while reading or writing a corpus file.
    Io(std::io::Error),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::EmptyCorpus => write!(f, "corpus is empty"),
            CorpusError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            CorpusError::DanglingReference(kind, id) => {
                write!(f, "dangling {kind} reference: {id}")
            }
            CorpusError::Serde(e) => write!(f, "serialization error: {e}"),
            CorpusError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> Self {
        CorpusError::Io(e)
    }
}

impl From<serde_json::Error> for CorpusError {
    fn from(e: serde_json::Error) -> Self {
        CorpusError::Serde(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CorpusError>;
