//! Bench for experiment F3: the Mexico scenario under compliance vs ASN
//! splitting, across enforcement levels.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use humnet_ixp::{CircumventionStrategy, MexicoConfig, MexicoScenario};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_telmex");
    for (label, strategy) in [
        ("comply", CircumventionStrategy::ComplyFully),
        ("asn_split", CircumventionStrategy::AsnSplitting),
    ] {
        group.bench_with_input(
            BenchmarkId::new("scenario_run", label),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut cfg = MexicoConfig::default();
                    cfg.strategy = strategy;
                    let sc = MexicoScenario::run(&cfg).unwrap();
                    black_box(sc.competitor_ixp_share().unwrap())
                })
            },
        );
    }
    for enforcement in [0.0, 0.5, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("enforcement_sweep_point", format!("{enforcement:.1}")),
            &enforcement,
            |b, &enforcement| {
                b.iter(|| {
                    let mut cfg = MexicoConfig::default();
                    cfg.regulation.enforcement = enforcement;
                    black_box(MexicoScenario::run(&cfg).unwrap().transit_cost())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
