//! Micro-benchmarks of the substrate kernels every experiment leans on:
//! RNG, inequality indices, graph algorithms, policy routing, text
//! vectorization, and reliability statistics.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use humnet_graph::{barabasi_albert, betweenness_centrality, pagerank};
use humnet_ixp::routing::reference::ReferenceTable;
use humnet_ixp::{synthetic_internet, AsKind, AsTopology, RegionTag, RoutingTable};
use humnet_stats::{bootstrap_ci, gini, mean, Rng};
use humnet_text::{tokenize, TfIdf};
use std::sync::Arc;

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_rng");
    group.bench_function("next_u64_x1000", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        })
    });
    group.bench_function("gaussian_x1000", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.gaussian();
            }
            black_box(acc)
        })
    });
    group.bench_function("zipf_n1000", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| black_box(rng.zipf(1000, 1.2)))
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_stats");
    let mut rng = Rng::new(2);
    let data: Vec<f64> = (0..10_000).map(|_| rng.pareto(1.0, 1.5)).collect();
    group.bench_function("gini_10k", |b| b.iter(|| black_box(gini(&data).unwrap())));
    group.bench_function("bootstrap_mean_1k_x200", |b| {
        let sample: Vec<f64> = data.iter().take(1000).copied().collect();
        b.iter(|| {
            let mut rng = Rng::new(3);
            black_box(
                bootstrap_ci(&sample, |d| mean(d).unwrap(), 200, 0.95, &mut rng)
                    .unwrap()
                    .estimate,
            )
        })
    });
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_graph");
    let mut rng = Rng::new(4);
    let g = barabasi_albert(500, 3, &mut rng).unwrap();
    group.bench_function("pagerank_ba500", |b| {
        b.iter(|| black_box(pagerank(&g, 0.85, 1e-9, 100).unwrap()[0]))
    });
    group.bench_function("betweenness_ba500", |b| {
        b.iter(|| black_box(betweenness_centrality(&g).unwrap()[0]))
    });
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_routing");
    // A layered AS hierarchy of ~100 ASes with peering.
    for n in [40usize, 100] {
        group.bench_with_input(BenchmarkId::new("routing_table", n), &n, |b, &n| {
            let mut rng = Rng::new(5);
            let mut t = AsTopology::new();
            let region = RegionTag::new("X", false);
            for i in 0..n {
                t.add_as(&format!("AS{i}"), AsKind::Access, &region, 1.0);
            }
            for j in 1..n {
                let p = rng.range(0, j);
                t.add_provider(j, p).unwrap();
            }
            for a in 0..n {
                for bb in (a + 1)..n {
                    if rng.chance(0.05) {
                        let _ = t.add_peering(a, bb, None);
                    }
                }
            }
            b.iter(|| black_box(RoutingTable::compute(&t).unwrap().as_count()))
        });
    }
    group.finish();
}

/// Large-N routing baselines for the ROADMAP internet-scale item: the SoA
/// engine (serial and pooled-parallel, all-pairs and sampled) against the
/// retained seed implementation on `synthetic_internet` topologies.
fn bench_routing_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_scale");
    let t1k = synthetic_internet(1_000, 5).unwrap();
    group.bench_function("seed_1k_all_pairs", |b| {
        b.iter(|| black_box(ReferenceTable::compute(&t1k).unwrap().as_count()))
    });
    group.bench_function("soa_1k_all_pairs", |b| {
        b.iter(|| black_box(RoutingTable::compute(&t1k).unwrap().digest()))
    });
    group.bench_function("soa_1k_all_pairs_par8", |b| {
        b.iter(|| black_box(RoutingTable::compute_parallel(&t1k, 8).unwrap().digest()))
    });
    let t10k = synthetic_internet(10_000, 5).unwrap();
    let ft10k = Arc::new(t10k.freeze());
    let dests: Vec<usize> = (0..256).map(|i| (i * 39) % 10_000).collect();
    group.bench_function("soa_10k_sample256", |b| {
        b.iter(|| {
            black_box(
                RoutingTable::compute_frozen(&ft10k, &dests, 1)
                    .unwrap()
                    .digest(),
            )
        })
    });
    group.bench_function("soa_10k_sample256_par8", |b| {
        b.iter(|| {
            black_box(
                RoutingTable::compute_frozen(&ft10k, &dests, 8)
                    .unwrap()
                    .digest(),
            )
        })
    });
    group.finish();
}

fn bench_text(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_text");
    let docs: Vec<Vec<String>> = (0..200)
        .map(|i| {
            tokenize(&format!(
                "community networks are operated by people round {i}; \
                 we measure peering and routing behaviour at exchanges"
            ))
        })
        .collect();
    group.bench_function("tfidf_fit_200_docs", |b| {
        b.iter(|| black_box(TfIdf::fit(&docs).unwrap().vocabulary().len()))
    });
    let model = TfIdf::fit(&docs).unwrap();
    group.bench_function("tfidf_transform", |b| {
        b.iter(|| black_box(model.transform(&docs[7]).len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rng,
    bench_stats,
    bench_graph,
    bench_routing,
    bench_routing_scale,
    bench_text
);
criterion_main!(benches);
