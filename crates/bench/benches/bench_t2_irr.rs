//! Bench for experiment T2: simulated coding rounds and the reliability
//! statistics.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use humnet_qual::{fleiss_kappa, krippendorff_alpha, SimulatedStudy, StudyConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_irr");
    group.bench_function("code_one_round", |b| {
        let mut study = SimulatedStudy::new(StudyConfig::default(), 1).unwrap();
        b.iter(|| black_box(study.code_round(2).len()))
    });
    group.bench_function("trajectory_6_rounds", |b| {
        b.iter(|| {
            let mut study = SimulatedStudy::new(StudyConfig::default(), 1).unwrap();
            black_box(study.reliability_trajectory(6).unwrap().len())
        })
    });
    let mut study = SimulatedStudy::new(StudyConfig::default(), 3).unwrap();
    let labels = study.code_round(3);
    group.bench_function("krippendorff_alpha_200_units", |b| {
        b.iter(|| black_box(krippendorff_alpha(&labels).unwrap()))
    });
    let full_units: Vec<usize> = (0..labels[0].len())
        .filter(|&u| labels.iter().all(|l| l[u].is_some()))
        .collect();
    let fleiss_input: Vec<Vec<Option<usize>>> = labels
        .iter()
        .map(|l| full_units.iter().map(|&u| l[u]).collect())
        .collect();
    group.bench_function("fleiss_kappa_200_units", |b| {
        b.iter(|| black_box(fleiss_kappa(&fleiss_input).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
