//! Bench for experiment F4: the two-region (Brazil/Germany) scenario over
//! the content-presence sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use humnet_ixp::{TwoRegionConfig, TwoRegionScenario};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_gravity");
    for presence in [0.0, 0.5, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("scenario_run", format!("presence_{presence:.1}")),
            &presence,
            |b, &presence| {
                b.iter(|| {
                    let mut cfg = TwoRegionConfig::default();
                    cfg.content_presence_south = presence;
                    let sc = TwoRegionScenario::run(&cfg).unwrap();
                    black_box(sc.foreign_exchange_share().unwrap())
                })
            },
        );
    }
    group.bench_function("larger_topology_30_isps", |b| {
        b.iter(|| {
            let mut cfg = TwoRegionConfig::default();
            cfg.south_isps = 30;
            cfg.content_providers = 12;
            let sc = TwoRegionScenario::run(&cfg).unwrap();
            black_box(sc.local_exchange_share().unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
