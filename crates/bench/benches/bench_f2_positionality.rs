//! Bench for experiment F2: corpus generation and the positionality audit,
//! with the DESIGN.md §4 ablation over citation preferential-attachment
//! strength.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use humnet_bench::small_corpus;
use humnet_core::MethodsAuditor;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_positionality");
    group.bench_function("corpus_generate", |b| {
        let (cfg, seed) = small_corpus(1);
        b.iter(|| black_box(cfg.generate(seed).unwrap().papers.len()))
    });
    group.bench_function("methods_audit", |b| {
        let (cfg, seed) = small_corpus(1);
        let corpus = cfg.generate(seed).unwrap();
        let auditor = MethodsAuditor::new();
        b.iter(|| black_box(auditor.audit(&corpus).unwrap().full_adoption_rate))
    });
    // Ablation (DESIGN.md §4): citation skew via preferential attachment.
    for strength in [0.0, 0.5, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("generate_pref_strength", format!("{strength:.1}")),
            &strength,
            |b, &strength| {
                let (mut cfg, seed) = small_corpus(2);
                cfg.preferential_strength = strength;
                b.iter(|| black_box(cfg.generate(seed).unwrap().citation_counts()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
