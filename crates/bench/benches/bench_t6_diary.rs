//! Bench for experiment T6: diary-study simulation with and without
//! technology probes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use humnet_qual::{simulate_diary, DiaryConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t6_diary");
    for (label, probe_rate) in [("plain", 0.0), ("probed", 0.5)] {
        group.bench_with_input(
            BenchmarkId::new("six_weeks", label),
            &probe_rate,
            |b, &probe_rate| {
                b.iter(|| {
                    let mut cfg = DiaryConfig::default();
                    cfg.probe_rate = probe_rate;
                    black_box(simulate_diary(&cfg, 1).unwrap().entries.len())
                })
            },
        );
    }
    group.bench_function("long_study_26_weeks_50_participants", |b| {
        b.iter(|| {
            let mut cfg = DiaryConfig::default();
            cfg.days = 182;
            cfg.participants = 50;
            black_box(simulate_diary(&cfg, 2).unwrap().final_week_compliance())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
