//! Bench for experiment F1: the data-driven agenda loop and the attention
//! concentration metrics over it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use humnet_agenda::{attention_gini, AgendaSim, MethodRegime};
use humnet_bench::small_agenda;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_attention");
    group.bench_function("agenda_run_data_driven", |b| {
        b.iter(|| {
            let mut cfg = small_agenda(1);
            cfg.regime = MethodRegime::DataDriven;
            let mut sim = AgendaSim::new(cfg).unwrap();
            sim.run().unwrap();
            black_box(sim.history().last().cloned())
        })
    });
    group.bench_function("attention_metrics", |b| {
        let mut cfg = small_agenda(1);
        cfg.regime = MethodRegime::DataDriven;
        let mut sim = AgendaSim::new(cfg).unwrap();
        sim.run().unwrap();
        b.iter(|| black_box(attention_gini(&sim.space).unwrap()))
    });
    group.bench_function("full_f1_experiment", |b| {
        b.iter(|| black_box(humnet_core::experiments::f1_attention(1).unwrap().gini))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
