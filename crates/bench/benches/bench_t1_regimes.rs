//! Bench for experiment T1: one agenda run per method regime.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use humnet_agenda::{AgendaSim, MethodRegime};
use humnet_bench::small_agenda;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_regimes");
    for regime in MethodRegime::ALL {
        group.bench_with_input(
            BenchmarkId::new("agenda_run", regime.label()),
            &regime,
            |b, &regime| {
                b.iter(|| {
                    let mut cfg = small_agenda(2);
                    cfg.regime = regime;
                    let mut sim = AgendaSim::new(cfg).unwrap();
                    sim.run().unwrap();
                    black_box(sim.history().len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
