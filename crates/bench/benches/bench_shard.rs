//! Sharded-run machinery costs: the pure merge path (folding N per-shard
//! telemetry snapshots into a run-level view) and the full supervisor
//! fan-out over cheap synthetic jobs at 1 / 2 / 4 / 8 shards. The merge
//! bench prices the aggregation itself; the run benches price the
//! per-shard-supervisor overhead that `--shards` adds on top of the work
//! (pooled worker dispatch + watchdog deadlines since the scheduler
//! runtime landed), which is what decides the break-even job size.
//! Baselines live in `BENCH_shard.json` at the repo root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use humnet_resilience::{
    merge_runs, ExperimentSpec, FaultKind, FaultProfile, JobError, JobOutput, RunnerConfig,
    Supervisor,
};
use humnet_telemetry::{Event, Telemetry, TelemetrySnapshot};
use std::time::Duration;

/// A per-shard snapshot shaped like real worker output: histogram
/// observations, counters, and a journal of milestone events.
fn shard_snapshot(shard: u64, events: u64) -> TelemetrySnapshot {
    let tel = Telemetry::new();
    for i in 0..events {
        tel.observe("job.latency_ms", shard * 37 + i * 13 % 4096);
        tel.counter("job.calls", 1);
        tel.event(Event::new("milestone", format!("s{shard} step {i}")));
    }
    tel.snapshot()
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_merge");
    for shards in [2u64, 8, 32] {
        let snaps: Vec<TelemetrySnapshot> =
            (0..shards).map(|k| shard_snapshot(k, 200)).collect();
        group.bench_function(format!("merge_{shards}_snapshots"), |b| {
            b.iter(|| {
                let mut acc = TelemetrySnapshot::default();
                for s in &snaps {
                    acc.merge(s, "");
                }
                black_box(acc.events.len())
            })
        });
    }
    group.finish();
}

/// Cheap deterministic job: a short fault-plan scan, no real simulator,
/// so the bench isolates supervisor + shard overhead.
fn synthetic_specs(n: usize) -> Vec<ExperimentSpec> {
    (0..n)
        .map(|i| {
            let code = format!("syn{i}");
            let owned = code.clone();
            ExperimentSpec::new(&code, "synthetic", "bench", move |plan, tel| {
                let faults = (0..64)
                    .filter(|&s| plan.draw(s, FaultKind::LinkOutage).is_some())
                    .count() as u64;
                tel.counter("job.calls", 1);
                Ok::<JobOutput, JobError>(JobOutput {
                    rendered: format!("{owned}: {faults}"),
                    faults_injected: faults,
                })
            })
        })
        .collect()
}

fn bench_sharded_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_run");
    let specs = synthetic_specs(32);
    let config = RunnerConfig {
        profile: FaultProfile::Chaos,
        deadline: Duration::from_secs(10),
        seed: 7,
        ..RunnerConfig::default()
    };
    for shards in [1u32, 2, 4, 8] {
        group.bench_function(format!("run_32_jobs_{shards}_shards"), |b| {
            b.iter(|| {
                let run = Supervisor::builder()
                    .config(config)
                    .shards(shards)
                    .build()
                    .run(&specs);
                black_box(run.report.experiments.len())
            })
        });
    }
    group.finish();
}

fn bench_merge_runs_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_merge_runs");
    let specs = synthetic_specs(32);
    let config = RunnerConfig {
        profile: FaultProfile::Chaos,
        deadline: Duration::from_secs(10),
        seed: 7,
        ..RunnerConfig::default()
    };
    // Pre-run the shards once; the bench prices only the run-level fold.
    let shard_runs: Vec<_> = (0..4u32)
        .map(|k| {
            let chunk: Vec<ExperimentSpec> = specs[(k as usize * 8)..((k as usize + 1) * 8)].to_vec();
            Supervisor::new(config).run_shard(&chunk, k, k as usize * 8)
        })
        .collect();
    group.bench_function("merge_runs_4_shards_32_jobs", |b| {
        b.iter(|| {
            let merged = merge_runs(&config, shard_runs.clone());
            black_box(merged.report.experiments.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_merge, bench_sharded_run, bench_merge_runs_path);
criterion_main!(benches);
