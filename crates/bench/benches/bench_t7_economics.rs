//! Bench for experiment T7: cooperative economics per dues policy.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use humnet_community::{simulate_economics, DuesPolicy, EconomicsConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t7_economics");
    for policy in DuesPolicy::ALL {
        group.bench_with_input(
            BenchmarkId::new("five_years", policy.label()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    black_box(
                        simulate_economics(&EconomicsConfig::default(), policy)
                            .unwrap()
                            .closing_balance,
                    )
                })
            },
        );
    }
    group.bench_function("large_coop_200_households_10y", |b| {
        let mut cfg = EconomicsConfig::default();
        cfg.households = 200;
        cfg.months = 120;
        cfg.backhaul_cost = 1000.0;
        b.iter(|| {
            black_box(
                simulate_economics(&cfg, DuesPolicy::IncomeScaled)
                    .unwrap()
                    .remaining_members,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
