//! Bench for experiment T3: the sustainability simulation per volunteer
//! regime.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use humnet_bench::small_sustainability;
use humnet_community::{SustainabilitySim, VolunteerRegime};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t3_sustain");
    for regime in VolunteerRegime::ALL {
        group.bench_with_input(
            BenchmarkId::new("quarter_year", regime.label()),
            &regime,
            |b, &regime| {
                b.iter(|| {
                    let mut cfg = small_sustainability(1);
                    cfg.regime = regime;
                    let out = SustainabilitySim::new(cfg).unwrap().run().unwrap();
                    black_box(out.uptime)
                })
            },
        );
    }
    group.bench_function("full_year_stewardship", |b| {
        b.iter(|| {
            let mut cfg = small_sustainability(2);
            cfg.days = 365;
            let out = SustainabilitySim::new(cfg).unwrap().run().unwrap();
            black_box(out.repairs_completed)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
