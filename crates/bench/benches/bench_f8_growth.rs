//! Bench for experiment F8: IXP growth dynamics across regional-affinity
//! settings.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use humnet_ixp::{simulate_growth, GrowthConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f8_growth");
    for gamma in [0.0, 1.5, 3.0] {
        group.bench_with_input(
            BenchmarkId::new("growth_run", format!("gamma_{gamma:.1}")),
            &gamma,
            |b, &gamma| {
                b.iter(|| {
                    let mut cfg = GrowthConfig::default();
                    cfg.gamma_region = gamma;
                    black_box(simulate_growth(&cfg).unwrap().top_share)
                })
            },
        );
    }
    group.bench_function("long_run_200_rounds", |b| {
        b.iter(|| {
            let mut cfg = GrowthConfig::default();
            cfg.rounds = 200;
            black_box(simulate_growth(&cfg).unwrap().membership_gini)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
