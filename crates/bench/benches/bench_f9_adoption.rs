//! Bench for experiment F9: adoption dynamics around a CFP intervention.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use humnet_agenda::{simulate_adoption, AdoptionConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f9_adoption");
    group.bench_function("default_30_rounds", |b| {
        b.iter(|| {
            black_box(
                simulate_adoption(&AdoptionConfig::default())
                    .unwrap()
                    .last()
                    .unwrap()
                    .human_share,
            )
        })
    });
    for weight in [0.3, 0.45, 0.6] {
        group.bench_with_input(
            BenchmarkId::new("cfp_weight", format!("{weight:.2}")),
            &weight,
            |b, &weight| {
                b.iter(|| {
                    let mut cfg = AdoptionConfig::default();
                    cfg.human_weight_after = weight;
                    black_box(simulate_adoption(&cfg).unwrap().len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
