//! Telemetry overhead on the two hottest simulator paths the new
//! histograms surfaced: the agenda sim step loop (`agenda.step_ns`) and
//! the IXP scenario route-and-assign step (`ixp.route_assign_ns`).
//!
//! Each path is timed bare, with disabled telemetry (the cost every plain
//! `run()` call now pays), and fully instrumented. Micro-benches at the
//! bottom price the individual primitives. Baselines live in
//! `BENCH_telemetry.json` at the repo root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use humnet_agenda::AgendaSim;
use humnet_bench::small_agenda;
use humnet_ixp::{MexicoConfig, MexicoScenario};
use humnet_resilience::NoFaults;
use humnet_telemetry::Telemetry;

fn bench_agenda(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_agenda_step");
    group.bench_function("agenda_run_bare", |b| {
        b.iter(|| {
            let mut sim = AgendaSim::new(small_agenda(1)).unwrap();
            sim.run().unwrap();
            black_box(sim.history().last().cloned())
        })
    });
    group.bench_function("agenda_run_instrumented_disabled", |b| {
        let tel = Telemetry::disabled();
        b.iter(|| {
            let mut sim = AgendaSim::new(small_agenda(1)).unwrap();
            sim.run_instrumented(&mut NoFaults, &tel).unwrap();
            black_box(sim.history().last().cloned())
        })
    });
    group.bench_function("agenda_run_instrumented_enabled", |b| {
        b.iter(|| {
            let tel = Telemetry::new();
            let mut sim = AgendaSim::new(small_agenda(1)).unwrap();
            sim.run_instrumented(&mut NoFaults, &tel).unwrap();
            black_box(tel.snapshot())
        })
    });
    group.finish();
}

fn bench_ixp(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_ixp_scenario");
    let cfg = MexicoConfig::default();
    group.bench_function("mexico_run_bare", |b| {
        b.iter(|| black_box(MexicoScenario::run(&cfg).unwrap().flows.len()))
    });
    group.bench_function("mexico_run_instrumented_enabled", |b| {
        b.iter(|| {
            let tel = Telemetry::new();
            let out = MexicoScenario::run_instrumented(&cfg, &mut NoFaults, &tel).unwrap();
            black_box((out.flows.len(), tel.snapshot()))
        })
    });
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_primitives");
    let enabled = Telemetry::new();
    let disabled = Telemetry::disabled();
    group.bench_function("counter_enabled", |b| {
        b.iter(|| enabled.counter(black_box("bench.counter"), 1))
    });
    group.bench_function("counter_disabled", |b| {
        b.iter(|| disabled.counter(black_box("bench.counter"), 1))
    });
    group.bench_function("observe_enabled", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(17);
            enabled.observe(black_box("bench.histogram_ns"), v);
        })
    });
    group.bench_function("observe_disabled", |b| {
        b.iter(|| disabled.observe(black_box("bench.histogram_ns"), 42))
    });
    group.bench_function("span_enter_exit_enabled", |b| {
        b.iter(|| {
            let _g = enabled.span("bench.span");
        })
    });
    group.bench_function("span_enter_exit_disabled", |b| {
        b.iter(|| {
            let _g = disabled.span("bench.span");
        })
    });
    group.finish();
}

criterion_group!(benches, bench_agenda, bench_ixp, bench_primitives);
criterion_main!(benches);
