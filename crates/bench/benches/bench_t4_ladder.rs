//! Bench for experiment T4: participation-ladder scoring and the §5.1
//! audit over project archetypes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use humnet_core::ParProject;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t4_ladder");
    group.bench_function("build_and_score_archetypes", |b| {
        b.iter(|| {
            let total: f64 = (0..6)
                .map(|i| ParProject::archetype(i).participation_score())
                .sum();
            black_box(total)
        })
    });
    group.bench_function("audit_5_1", |b| {
        let projects: Vec<ParProject> = (0..6).map(ParProject::archetype).collect();
        b.iter(|| {
            let violations: usize = projects.iter().map(|p| p.audit_5_1().len()).sum();
            black_box(violations)
        })
    });
    group.bench_function("full_t4_table", |b| {
        b.iter(|| black_box(humnet_core::experiments::t4_ladder().unwrap().rows.len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
