//! Bench for experiment F7: the §5 methods audit, separating corpus
//! generation cost from audit cost and from the text detector.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use humnet_bench::small_corpus;
use humnet_core::MethodsAuditor;
use humnet_survey::detect_positionality;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f7_audit");
    let (cfg, seed) = small_corpus(3);
    let corpus = cfg.generate(seed).unwrap();
    group.bench_function("audit_240_papers", |b| {
        let auditor = MethodsAuditor::new();
        b.iter(|| black_box(auditor.audit(&corpus).unwrap().detector_recall))
    });
    group.bench_function("positionality_detector_per_abstract", |b| {
        let texts: Vec<&str> = corpus.papers.iter().map(|p| p.abstract_text.as_str()).collect();
        let mut i = 0;
        b.iter(|| {
            let hit = detect_positionality(texts[i % texts.len()]).is_some();
            i += 1;
            black_box(hit)
        })
    });
    group.bench_function("full_f7_table", |b| {
        b.iter(|| black_box(humnet_core::experiments::f7_audit(3).unwrap().rows.len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
