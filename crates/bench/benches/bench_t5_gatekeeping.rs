//! Bench for experiment T5: the review-panel simulation across CFP weight
//! profiles.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use humnet_agenda::review::run_review;
use humnet_agenda::{ReviewConfig, VenueWeights};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t5_gatekeeping");
    group.bench_function("traditional_review_cycle", |b| {
        b.iter(|| {
            black_box(
                run_review(&ReviewConfig::default(), &VenueWeights::traditional_systems())
                    .unwrap()
                    .human_acceptance,
            )
        })
    });
    for weight in [0.0, 0.25, 0.5] {
        group.bench_with_input(
            BenchmarkId::new("broadened_cfp", format!("{weight:.2}")),
            &weight,
            |b, &weight| {
                b.iter(|| {
                    black_box(
                        run_review(&ReviewConfig::default(), &VenueWeights::broadened(weight))
                            .unwrap()
                            .systems_acceptance,
                    )
                })
            },
        );
    }
    group.bench_function("large_venue_1000_submissions", |b| {
        let mut cfg = ReviewConfig::default();
        cfg.systems_submissions = 750;
        cfg.human_submissions = 250;
        b.iter(|| black_box(run_review(&cfg, &VenueWeights::broadened(0.2)).unwrap().accepted))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
