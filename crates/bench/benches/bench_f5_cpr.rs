//! Bench for experiment F5: congestion policies, with the DESIGN.md §4
//! ablation over the token bank cap.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use humnet_bench::small_congestion;
use humnet_community::{AllocationPolicy, CongestionSim};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f5_cpr");
    for policy in AllocationPolicy::ALL {
        group.bench_with_input(
            BenchmarkId::new("policy_run", policy.label()),
            &policy,
            |b, &policy| {
                let sim = CongestionSim::new(small_congestion(1)).unwrap();
                b.iter(|| black_box(sim.run(policy).fairness))
            },
        );
    }
    // Ablation: token bank depth.
    for bank in [0.0, 3.0, 10.0] {
        group.bench_with_input(
            BenchmarkId::new("token_bank_cap", format!("{bank:.0}")),
            &bank,
            |b, &bank| {
                let mut cfg = small_congestion(2);
                cfg.bank_cap_rounds = bank;
                let sim = CongestionSim::new(cfg).unwrap();
                b.iter(|| black_box(sim.run(AllocationPolicy::CommunityTokens).starvation))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
