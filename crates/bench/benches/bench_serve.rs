//! Serve-path costs over the real TCP protocol: a cache hit paid three
//! ways — a fresh connection per request (what the deprecated
//! connection-per-request client did), one persistent [`ServeClient`]
//! reused across requests, and a 16-deep pipeline on that same
//! connection — plus the miss path (a toy-job supervisor run on the warm
//! pool) and the raw content-address hash. The per-connection vs
//! persistent vs pipelined spread is the headline number for the client
//! redesign: it prices what connection reuse and pipelining save per
//! request. Baselines live in `BENCH_serve.json` at the repo root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use humnet_resilience::{ExperimentSpec, JobOutput, RunnerConfig};
use humnet_serve::{cache_key, Request, ServeClient, ServeConfig, Server, SpecFactory};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

/// A spec cheap enough that a miss prices the daemon + supervisor
/// machinery, not the experiment itself.
fn toy_factory() -> SpecFactory {
    Arc::new(|code: &str| {
        if !code.starts_with("exp") {
            return None;
        }
        let code = code.to_owned();
        Some(ExperimentSpec::new(code.clone(), "bench toy", "toy", move |_plan, _tel| {
            Ok(JobOutput {
                rendered: format!("bench output for {code}\n"),
                faults_injected: 0,
            })
        }))
    })
}

struct Daemon {
    addr: String,
    dir: PathBuf,
    handle: std::thread::JoinHandle<()>,
}

fn start_daemon(tag: &str) -> Daemon {
    let dir = std::env::temp_dir().join(format!(
        "humnet-serve-bench-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = ServeConfig::default();
    cfg.addr = "127.0.0.1:0".to_owned();
    cfg.cache_dir = dir.clone();
    cfg.queue_depth = 64;
    cfg.concurrency = 2;
    cfg.runner = RunnerConfig::default();
    let server = Server::bind(cfg, toy_factory()).expect("bind bench daemon");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || {
        let _ = server.run();
    });
    Daemon { addr, dir, handle }
}

fn stop_daemon(daemon: Daemon) {
    let _ = ServeClient::connect(&daemon.addr, TIMEOUT).and_then(|mut c| c.shutdown());
    let _ = daemon.handle.join();
    let _ = std::fs::remove_dir_all(&daemon.dir);
}

/// One warmed tuple queried repeatedly, a fresh TCP connection per
/// request — the connection-per-request cost the old client paid.
fn bench_hit(c: &mut Criterion) {
    let daemon = start_daemon("hit");
    let req = Request::run("exp0", 7, "none", 1.0);
    let warm = ServeClient::connect(&daemon.addr, TIMEOUT)
        .and_then(|mut c| c.request(&req))
        .expect("warm the cache");
    assert_eq!(warm.status, "miss");
    let mut group = c.benchmark_group("serve");
    group.bench_function("hit_tcp_round_trip", |b| {
        b.iter(|| {
            let resp = ServeClient::connect(&daemon.addr, TIMEOUT)
                .and_then(|mut c| c.request(&req))
                .expect("hit query");
            assert_eq!(resp.status, "hit");
            black_box(resp.artifact.map(|a| a.len()))
        })
    });

    // The same tuple over one persistent connection: what every reused
    // pool checkout saves (connect + handshake + slow-start).
    let mut client = ServeClient::connect(&daemon.addr, TIMEOUT).expect("persistent client");
    group.bench_function("hit_tcp_persistent", |b| {
        b.iter(|| {
            let resp = client.request(&req).expect("hit query");
            assert_eq!(resp.status, "hit");
            black_box(resp.artifact.map(|a| a.len()))
        })
    });

    // 16 requests written back-to-back before reading 16 responses: the
    // per-request cost once pipelining amortizes the round trip. One
    // iteration covers 16 requests — divide by 16 to compare.
    let batch: Vec<Request> = (0..16).map(|_| req.clone()).collect();
    group.bench_function("hit_tcp_pipelined_x16", |b| {
        b.iter(|| {
            let resps = client.pipeline(&batch).expect("pipelined hits");
            assert_eq!(resps.len(), 16);
            black_box(resps.iter().filter(|r| r.status == "hit").count())
        })
    });
    group.finish();
    drop(client);
    stop_daemon(daemon);
}

/// A fresh seed every iteration over a persistent connection: queue
/// admission + supervisor on the warm pool + artifact serialization +
/// cache insert.
fn bench_miss(c: &mut Criterion) {
    let daemon = start_daemon("miss");
    let seed = AtomicU64::new(1);
    let mut client = ServeClient::connect(&daemon.addr, TIMEOUT).expect("persistent client");
    let mut group = c.benchmark_group("serve");
    group.bench_function("miss_toy_run", |b| {
        b.iter(|| {
            let s = seed.fetch_add(1, Ordering::Relaxed);
            let resp = client
                .request(&Request::run("exp0", s, "none", 1.0))
                .expect("miss query");
            assert_eq!(resp.status, "miss");
            black_box(resp.artifact.map(|a| a.len()))
        })
    });
    group.finish();
    drop(client);
    stop_daemon(daemon);
}

/// The raw content address: what every request pays before the index.
fn bench_key(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    let mut n = 0u64;
    group.bench_function("cache_key_fnv128", |b| {
        b.iter(|| {
            n = n.wrapping_add(1);
            black_box(cache_key("f1", n, "chaos", 1.25, 1, "0.1.0+abcdef123456"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hit, bench_miss, bench_key);
criterion_main!(benches);
