//! Scheduling-policy costs: static contiguous slices vs the work-stealing
//! queue, over a *skewed* job mix (a few expensive jobs clustered at the
//! front of the spec list, as in the real experiment suite where the
//! agenda run is ~10× the cheapest scenario) and over a uniform mix that
//! prices pure steal overhead. Jobs block on short sleeps, so shard
//! workers overlap even on a single-core runner and the wall-clock gap
//! between schedules reflects load balance, not CPU parallelism.
//! Baselines live in `BENCH_schedule.json` at the repo root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use humnet_bench::schedule_specs::{skewed_specs, uniform_specs};
use humnet_resilience::{RunnerConfig, Schedule, Supervisor};
use std::time::Duration;

fn bench_config() -> RunnerConfig {
    RunnerConfig {
        deadline: Duration::from_secs(10),
        seed: 7,
        ..RunnerConfig::default()
    }
}

/// Skewed mix: 4 heavy jobs (2 ms) at the head of the list, 12 light jobs
/// (200 µs) behind them. A static plan pins all the heavy jobs onto the
/// first shard(s); stealing redistributes them, so steal should win
/// wall-clock from 2 workers up and the gap should widen with workers.
fn bench_skewed(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_skew");
    let specs = skewed_specs(4, 12);
    let config = bench_config();
    for schedule in [Schedule::Static, Schedule::Steal] {
        for workers in [1u32, 2, 4, 8] {
            group.bench_function(
                format!("skew_16_jobs_{}_{}w", schedule.label(), workers),
                |b| {
                    b.iter(|| {
                        let run = Supervisor::builder()
                            .config(config)
                            .shards(workers)
                            .schedule(schedule)
                            .build()
                            .run(&specs);
                        black_box(run.report.experiments.len())
                    })
                },
            );
        }
    }
    group.finish();
}

/// Uniform mix: 16 identical 200 µs jobs. Static and steal should be
/// within noise of each other here — the difference prices the stealing
/// machinery itself (queue locks, per-spec journals, the spec-order
/// assembly) with no load imbalance to pay for it.
fn bench_uniform(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_uniform");
    let specs = uniform_specs(16);
    let config = bench_config();
    for schedule in [Schedule::Static, Schedule::Steal] {
        group.bench_function(format!("uniform_16_jobs_{}_4w", schedule.label()), |b| {
            b.iter(|| {
                let run = Supervisor::builder()
                    .config(config)
                    .shards(4)
                    .schedule(schedule)
                    .build()
                    .run(&specs);
                black_box(run.report.experiments.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skewed, bench_uniform);
criterion_main!(benches);
