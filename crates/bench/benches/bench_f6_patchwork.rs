//! Bench for experiment F6: the insight-saturation model across schedules,
//! with the DESIGN.md §4 ablation over memo retention.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use humnet_core::{EthnographyConfig, FieldStudy, MemoPractice, Schedule};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f6_patchwork");
    let cases: Vec<(&str, Schedule)> = vec![
        ("traditional", Schedule::Traditional),
        (
            "patchwork_6",
            Schedule::Patchwork {
                fragments: 6,
                gap_days: 30,
            },
        ),
        ("rapid_10", Schedule::Rapid { days_on_site: 10 }),
    ];
    for (label, schedule) in cases {
        group.bench_with_input(BenchmarkId::new("study_run", label), &schedule, |b, schedule| {
            b.iter(|| {
                let mut cfg = EthnographyConfig::default();
                cfg.schedule = schedule.clone();
                black_box(FieldStudy::new(cfg).unwrap().run().insights)
            })
        });
    }
    // Ablation: memo retention sweep.
    for keep in [0.0, 0.5, 0.9] {
        group.bench_with_input(
            BenchmarkId::new("memo_retention", format!("{keep:.1}")),
            &keep,
            |b, &keep| {
                b.iter(|| {
                    let mut cfg = EthnographyConfig::default();
                    cfg.schedule = Schedule::Patchwork {
                        fragments: 6,
                        gap_days: 30,
                    };
                    cfg.memos = MemoPractice::Reflexive(keep);
                    black_box(FieldStudy::new(cfg).unwrap().run().saturation)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
