//! Shared fixtures for the humnet benchmark harness.
//!
//! Each bench target regenerates one experiment from `EXPERIMENTS.md`
//! (usually at reduced scale so Criterion can iterate) and additionally
//! sweeps the ablation knobs called out in `DESIGN.md` §4.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use humnet_agenda::AgendaConfig;
use humnet_community::{CongestionConfig, SustainabilityConfig};
use humnet_corpus::CorpusConfig;

/// A reduced agenda configuration benches can iterate quickly.
pub fn small_agenda(seed: u64) -> AgendaConfig {
    let mut cfg = AgendaConfig::default();
    cfg.researchers = 60;
    cfg.rounds = 20;
    cfg.seed = seed;
    cfg
}

/// A reduced corpus configuration (~240 papers).
pub fn small_corpus(seed: u64) -> (CorpusConfig, u64) {
    let mut cfg = CorpusConfig::default();
    cfg.years = 4;
    for v in cfg.venues.iter_mut() {
        v.papers_per_year = 10;
    }
    cfg.author_pool = 150;
    (cfg, seed)
}

/// A reduced sustainability run (one quarter).
pub fn small_sustainability(seed: u64) -> SustainabilityConfig {
    let mut cfg = SustainabilityConfig::default();
    cfg.days = 90;
    cfg.seed = seed;
    cfg
}

/// A reduced congestion run.
pub fn small_congestion(seed: u64) -> CongestionConfig {
    let mut cfg = CongestionConfig::default();
    cfg.rounds = 120;
    cfg.seed = seed;
    cfg
}

/// Synthetic spec lists for the scheduling benches (`bench_schedule`):
/// blocking-sleep jobs whose cost mix is controlled, so static-vs-steal
/// wall-clock differences measure load balance rather than job content.
pub mod schedule_specs {
    use humnet_resilience::{ExperimentSpec, JobError, JobOutput};
    use std::thread;
    use std::time::Duration;

    /// One job that blocks for `sleep` and succeeds deterministically.
    fn sleeping_spec(code: String, sleep: Duration) -> ExperimentSpec {
        let rendered = format!("{code}: slept {} us", sleep.as_micros());
        ExperimentSpec::new(&code, "synthetic sleeper", "bench", move |_plan, _tel| {
            thread::sleep(sleep);
            Ok::<JobOutput, JobError>(JobOutput {
                rendered: rendered.clone(),
                faults_injected: 0,
            })
        })
    }

    /// `heavy` 2 ms jobs followed by `light` 200 µs jobs — the skewed mix.
    /// Clustering the heavy jobs at the head is the adversarial case for a
    /// contiguous static plan: they all land on the first shard(s).
    pub fn skewed_specs(heavy: usize, light: usize) -> Vec<ExperimentSpec> {
        let mut specs = Vec::with_capacity(heavy + light);
        for i in 0..heavy {
            specs.push(sleeping_spec(format!("heavy{i}"), Duration::from_millis(2)));
        }
        for i in 0..light {
            specs.push(sleeping_spec(format!("light{i}"), Duration::from_micros(200)));
        }
        specs
    }

    /// `n` identical 200 µs jobs — no imbalance for stealing to exploit.
    pub fn uniform_specs(n: usize) -> Vec<ExperimentSpec> {
        (0..n)
            .map(|i| sleeping_spec(format!("uni{i}"), Duration::from_micros(200)))
            .collect()
    }
}
