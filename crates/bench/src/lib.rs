//! Shared fixtures for the humnet benchmark harness.
//!
//! Each bench target regenerates one experiment from `EXPERIMENTS.md`
//! (usually at reduced scale so Criterion can iterate) and additionally
//! sweeps the ablation knobs called out in `DESIGN.md` §4.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use humnet_agenda::AgendaConfig;
use humnet_community::{CongestionConfig, SustainabilityConfig};
use humnet_corpus::CorpusConfig;

/// A reduced agenda configuration benches can iterate quickly.
pub fn small_agenda(seed: u64) -> AgendaConfig {
    let mut cfg = AgendaConfig::default();
    cfg.researchers = 60;
    cfg.rounds = 20;
    cfg.seed = seed;
    cfg
}

/// A reduced corpus configuration (~240 papers).
pub fn small_corpus(seed: u64) -> (CorpusConfig, u64) {
    let mut cfg = CorpusConfig::default();
    cfg.years = 4;
    for v in cfg.venues.iter_mut() {
        v.papers_per_year = 10;
    }
    cfg.author_pool = 150;
    (cfg, seed)
}

/// A reduced sustainability run (one quarter).
pub fn small_sustainability(seed: u64) -> SustainabilityConfig {
    let mut cfg = SustainabilityConfig::default();
    cfg.days = 90;
    cfg.seed = seed;
    cfg
}

/// A reduced congestion run.
pub fn small_congestion(seed: u64) -> CongestionConfig {
    let mut cfg = CongestionConfig::default();
    cfg.rounds = 120;
    cfg.seed = seed;
    cfg
}
