//! Sampling designs and their representation biases.
//!
//! §1 of the paper: research agendas "reflect the views of those who are
//! most easily reachable". Sampling design is where that bias enters. This
//! module models a stakeholder population with *accessibility* (how easy a
//! member is for researchers to reach) and *group* labels, implements four
//! designs, and measures how far each sample's group composition drifts
//! from the population's.

use crate::{Result, SurveyError};
use humnet_stats::Rng;
use serde::{Deserialize, Serialize};

/// One member of a study population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationMember {
    /// Group label (e.g. stakeholder class index).
    pub group: usize,
    /// How reachable this member is to researchers, in `(0, 1]`.
    pub accessibility: f64,
    /// Indices of social connections (for snowball sampling).
    pub connections: Vec<usize>,
}

/// A sampling design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingDesign {
    /// Uniform random sample.
    SimpleRandom,
    /// Proportional stratified sample over groups (the gold standard here).
    Stratified,
    /// Members drawn with probability proportional to accessibility
    /// (what "we talked to whoever answered email" actually is).
    Convenience,
    /// Seeded by convenience, then grown along social connections.
    Snowball {
        /// Number of convenience-drawn seed members.
        seeds: usize,
    },
}

/// Draw a sample of `k` member indices from the population.
pub fn draw_sample(
    population: &[PopulationMember],
    design: SamplingDesign,
    k: usize,
    rng: &mut Rng,
) -> Result<Vec<usize>> {
    if population.is_empty() {
        return Err(SurveyError::EmptyInput);
    }
    if k == 0 || k > population.len() {
        return Err(SurveyError::InvalidParameter("k must be in [1, population size]"));
    }
    for m in population {
        if !(m.accessibility > 0.0 && m.accessibility <= 1.0) {
            return Err(SurveyError::InvalidParameter("accessibility must be in (0,1]"));
        }
        if m.connections.iter().any(|&c| c >= population.len()) {
            return Err(SurveyError::InvalidParameter("connection index out of range"));
        }
    }
    match design {
        SamplingDesign::SimpleRandom => Ok(rng.sample_indices(population.len(), k)),
        SamplingDesign::Stratified => {
            // Proportional allocation per group, largest-remainder rounding.
            let max_group = population.iter().map(|m| m.group).max().unwrap_or(0);
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); max_group + 1];
            for (i, m) in population.iter().enumerate() {
                groups[m.group].push(i);
            }
            let n = population.len() as f64;
            let mut quotas: Vec<(usize, usize, f64)> = groups
                .iter()
                .enumerate()
                .map(|(g, members)| {
                    let exact = k as f64 * members.len() as f64 / n;
                    (g, exact.floor() as usize, exact - exact.floor())
                })
                .collect();
            let mut allocated: usize = quotas.iter().map(|&(_, q, _)| q).sum();
            // Distribute remainders to the largest fractional parts.
            quotas.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
            let n_quotas = quotas.len();
            let mut qi = 0;
            while allocated < k {
                let slot = qi % n_quotas;
                let g = quotas[slot].0;
                if quotas[slot].1 < groups[g].len() {
                    quotas[slot].1 += 1;
                    allocated += 1;
                }
                qi += 1;
                if qi > 10 * n_quotas {
                    break; // tiny groups exhausted; accept a smaller sample
                }
            }
            let mut sample = Vec::with_capacity(k);
            for &(g, quota, _) in &quotas {
                let members = &groups[g];
                if quota >= members.len() {
                    sample.extend_from_slice(members);
                } else if quota > 0 {
                    let picks = rng.sample_indices(members.len(), quota);
                    sample.extend(picks.into_iter().map(|i| members[i]));
                }
            }
            Ok(sample)
        }
        SamplingDesign::Convenience => {
            let weights: Vec<f64> = population.iter().map(|m| m.accessibility).collect();
            let mut chosen = Vec::with_capacity(k);
            let mut guard = 0;
            while chosen.len() < k && guard < 100_000 {
                let pick = rng.choose_weighted(&weights);
                if !chosen.contains(&pick) {
                    chosen.push(pick);
                }
                guard += 1;
            }
            Ok(chosen)
        }
        SamplingDesign::Snowball { seeds } => {
            if seeds == 0 {
                return Err(SurveyError::InvalidParameter("snowball needs >= 1 seed"));
            }
            let weights: Vec<f64> = population.iter().map(|m| m.accessibility).collect();
            let mut chosen: Vec<usize> = Vec::with_capacity(k);
            let mut guard = 0;
            while chosen.len() < seeds.min(k) && guard < 100_000 {
                let pick = rng.choose_weighted(&weights);
                if !chosen.contains(&pick) {
                    chosen.push(pick);
                }
                guard += 1;
            }
            // Grow along referrals: breadth-first through connections.
            let mut frontier = 0;
            while chosen.len() < k && frontier < chosen.len() {
                let current = chosen[frontier];
                frontier += 1;
                let mut refs = population[current].connections.clone();
                rng.shuffle(&mut refs);
                for r in refs {
                    if chosen.len() >= k {
                        break;
                    }
                    if !chosen.contains(&r) {
                        chosen.push(r);
                    }
                }
            }
            // If the component is exhausted, top up by convenience.
            let mut guard = 0;
            while chosen.len() < k && guard < 100_000 {
                let pick = rng.choose_weighted(&weights);
                if !chosen.contains(&pick) {
                    chosen.push(pick);
                }
                guard += 1;
            }
            Ok(chosen)
        }
    }
}

/// Total-variation distance between the sample's group distribution and
/// the population's, in `[0, 1]`. 0 = perfectly representative.
pub fn representation_bias(
    population: &[PopulationMember],
    sample: &[usize],
) -> Result<f64> {
    if population.is_empty() || sample.is_empty() {
        return Err(SurveyError::EmptyInput);
    }
    let max_group = population.iter().map(|m| m.group).max().unwrap_or(0);
    let mut pop_counts = vec![0.0; max_group + 1];
    for m in population {
        pop_counts[m.group] += 1.0;
    }
    let mut sample_counts = vec![0.0; max_group + 1];
    for &i in sample {
        let m = population
            .get(i)
            .ok_or(SurveyError::InvalidParameter("sample index out of range"))?;
        sample_counts[m.group] += 1.0;
    }
    let pn: f64 = pop_counts.iter().sum();
    let sn: f64 = sample_counts.iter().sum();
    let tv = pop_counts
        .iter()
        .zip(&sample_counts)
        .map(|(&p, &s)| (p / pn - s / sn).abs())
        .sum::<f64>()
        / 2.0;
    Ok(tv)
}

/// Build a synthetic stakeholder population: `groups.len()` groups with
/// the given sizes and per-group mean accessibility; members are wired to
/// ~`mean_degree` random same-group connections (homophily).
pub fn synthetic_population(
    groups: &[(usize, f64)],
    mean_degree: f64,
    rng: &mut Rng,
) -> Result<Vec<PopulationMember>> {
    if groups.is_empty() {
        return Err(SurveyError::EmptyInput);
    }
    let mut population = Vec::new();
    let mut group_members: Vec<Vec<usize>> = vec![Vec::new(); groups.len()];
    for (g, &(size, access)) in groups.iter().enumerate() {
        if !(0.0 < access && access <= 1.0) {
            return Err(SurveyError::InvalidParameter("accessibility must be in (0,1]"));
        }
        for _ in 0..size {
            let idx = population.len();
            group_members[g].push(idx);
            let jitter = (access + rng.range_f64(-0.1, 0.1)).clamp(0.05, 1.0);
            population.push(PopulationMember {
                group: g,
                accessibility: jitter,
                connections: Vec::new(),
            });
        }
    }
    // Wire same-group connections.
    for members in &group_members {
        if members.len() < 2 {
            continue;
        }
        for &m in members {
            let want = rng.poisson(mean_degree / 2.0) as usize;
            for _ in 0..want {
                let other = members[rng.range(0, members.len())];
                if other != m && !population[m].connections.contains(&other) {
                    population[m].connections.push(other);
                    population[other].connections.push(m);
                }
            }
        }
    }
    Ok(population)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 groups: reachable majority, moderately reachable, hard-to-reach
    /// minority (the marginalized operators of the paper's framing).
    fn population(rng: &mut Rng) -> Vec<PopulationMember> {
        synthetic_population(&[(100, 0.9), (60, 0.5), (40, 0.08)], 4.0, rng).unwrap()
    }

    #[test]
    fn draw_validation() {
        let mut rng = Rng::new(1);
        let pop = population(&mut rng);
        assert!(draw_sample(&[], SamplingDesign::SimpleRandom, 1, &mut rng).is_err());
        assert!(draw_sample(&pop, SamplingDesign::SimpleRandom, 0, &mut rng).is_err());
        assert!(draw_sample(&pop, SamplingDesign::SimpleRandom, 999, &mut rng).is_err());
        assert!(draw_sample(&pop, SamplingDesign::Snowball { seeds: 0 }, 10, &mut rng).is_err());
    }

    #[test]
    fn samples_have_right_size_and_distinct_members() {
        let mut rng = Rng::new(2);
        let pop = population(&mut rng);
        for design in [
            SamplingDesign::SimpleRandom,
            SamplingDesign::Stratified,
            SamplingDesign::Convenience,
            SamplingDesign::Snowball { seeds: 5 },
        ] {
            let s = draw_sample(&pop, design, 50, &mut rng).unwrap();
            assert_eq!(s.len(), 50, "{design:?}");
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 50, "{design:?} must not repeat members");
        }
    }

    #[test]
    fn stratified_is_nearly_unbiased() {
        let mut rng = Rng::new(3);
        let pop = population(&mut rng);
        let s = draw_sample(&pop, SamplingDesign::Stratified, 50, &mut rng).unwrap();
        let bias = representation_bias(&pop, &s).unwrap();
        assert!(bias < 0.03, "stratified bias = {bias}");
    }

    #[test]
    fn convenience_underrepresents_hard_to_reach() {
        let mut rng = Rng::new(4);
        let pop = population(&mut rng);
        // Average over draws.
        let mut conv_bias = 0.0;
        let mut random_bias = 0.0;
        for _ in 0..10 {
            let c = draw_sample(&pop, SamplingDesign::Convenience, 50, &mut rng).unwrap();
            conv_bias += representation_bias(&pop, &c).unwrap();
            let r = draw_sample(&pop, SamplingDesign::SimpleRandom, 50, &mut rng).unwrap();
            random_bias += representation_bias(&pop, &r).unwrap();
        }
        assert!(
            conv_bias > random_bias + 0.3,
            "convenience bias {conv_bias} vs random {random_bias} (summed over 10 draws)"
        );
        // Specifically: group 2 (hard to reach) nearly absent.
        let c = draw_sample(&pop, SamplingDesign::Convenience, 50, &mut rng).unwrap();
        let hard = c.iter().filter(|&&i| pop[i].group == 2).count();
        assert!(hard <= 3, "hard-to-reach sampled {hard} times");
    }

    #[test]
    fn snowball_inherits_seed_bias_via_homophily() {
        let mut rng = Rng::new(5);
        let pop = population(&mut rng);
        let mut snow = 0.0;
        let mut strat = 0.0;
        for _ in 0..10 {
            let s = draw_sample(&pop, SamplingDesign::Snowball { seeds: 5 }, 50, &mut rng).unwrap();
            snow += representation_bias(&pop, &s).unwrap();
            let t = draw_sample(&pop, SamplingDesign::Stratified, 50, &mut rng).unwrap();
            strat += representation_bias(&pop, &t).unwrap();
        }
        assert!(
            snow > strat,
            "snowball bias {snow} should exceed stratified {strat}"
        );
    }

    #[test]
    fn representation_bias_bounds() {
        let mut rng = Rng::new(6);
        let pop = population(&mut rng);
        let all: Vec<usize> = (0..pop.len()).collect();
        let b = representation_bias(&pop, &all).unwrap();
        assert!(b.abs() < 1e-12, "full census has zero bias");
        assert!(representation_bias(&pop, &[]).is_err());
        assert!(representation_bias(&pop, &[9999]).is_err());
    }

    #[test]
    fn synthetic_population_shape() {
        let mut rng = Rng::new(7);
        let pop = population(&mut rng);
        assert_eq!(pop.len(), 200);
        // Homophily: all connections are same-group.
        for m in &pop {
            for &c in &m.connections {
                assert_eq!(pop[c].group, m.group);
            }
        }
        assert!(synthetic_population(&[], 2.0, &mut rng).is_err());
        assert!(synthetic_population(&[(5, 1.5)], 2.0, &mut rng).is_err());
    }
}
