//! # humnet-survey
//!
//! Survey and positionality substrate for the `humnet` toolkit.
//!
//! Three jobs:
//!
//! * [`instrument`] — Likert instruments with reverse-coded items,
//!   response simulation with acquiescence/social-desirability bias, and
//!   Cronbach's α for internal consistency;
//! * [`sampling`] — sampling designs (simple random, stratified,
//!   convenience, snowball) with measurable representation bias, modelling
//!   the paper's §1 observation that "existing agendas reflect the views of
//!   those who are most easily reachable";
//! * [`positionality`] — a typed model of positionality statements (§4), a
//!   rule-based detector that finds them in paper text (used by experiment
//!   **F2** over the synthetic corpus), and a reflexivity score.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod instrument;
pub mod positionality;
pub mod sampling;
pub mod weighting;

pub use instrument::{cronbach_alpha, Instrument, LikertItem, ResponseBias, ResponseSet};
pub use weighting::{design_effect, post_stratification_weights, weighted_mean};
pub use positionality::{
    detect_positionality, reflexivity_score, DetectedStatement, PositionalityFacet,
    PositionalityStatement,
};
pub use sampling::{representation_bias, PopulationMember, SamplingDesign};

/// Errors produced by the survey substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SurveyError {
    /// The operation requires nonempty input.
    EmptyInput,
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// Sizes that must match did not.
    LengthMismatch {
        /// First length.
        left: usize,
        /// Second length.
        right: usize,
    },
    /// The statistic is undefined for the given data.
    Degenerate(&'static str),
}

impl std::fmt::Display for SurveyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SurveyError::EmptyInput => write!(f, "input is empty"),
            SurveyError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            SurveyError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            SurveyError::Degenerate(what) => write!(f, "statistic undefined: {what}"),
        }
    }
}

impl std::error::Error for SurveyError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, SurveyError>;
