//! Post-stratification weighting: salvaging biased samples.
//!
//! §1's diagnosis is that researchers hear from "those who are most easily
//! reachable". When group membership is known, survey methodology has a
//! standard partial remedy: weight each respondent by how under- or
//! over-represented their group is. This module computes post-stratification
//! weights and weighted estimates, so the toolkit can quantify *how much*
//! of a convenience sample's bias the correction recovers — and what it
//! cannot (groups with zero respondents stay invisible: you cannot weight
//! the absent).

use crate::sampling::PopulationMember;
use crate::{Result, SurveyError};

/// Post-stratification weights for a sample: `w_i = (N_g/N) / (n_g/n)`
/// where `g` is respondent `i`'s group. Respondents from unsampled groups
/// cannot occur (weights are per sampled member). Returns one weight per
/// sample entry, mean-normalized to 1.
pub fn post_stratification_weights(
    population: &[PopulationMember],
    sample: &[usize],
) -> Result<Vec<f64>> {
    if population.is_empty() || sample.is_empty() {
        return Err(SurveyError::EmptyInput);
    }
    let max_group = population.iter().map(|m| m.group).max().unwrap_or(0);
    let mut pop_counts = vec![0.0; max_group + 1];
    for m in population {
        pop_counts[m.group] += 1.0;
    }
    let mut sample_counts = vec![0.0; max_group + 1];
    for &i in sample {
        let m = population
            .get(i)
            .ok_or(SurveyError::InvalidParameter("sample index out of range"))?;
        sample_counts[m.group] += 1.0;
    }
    let n_pop: f64 = pop_counts.iter().sum();
    let n_sample = sample.len() as f64;
    let weights: Vec<f64> = sample
        .iter()
        .map(|&i| {
            let g = population[i].group;
            (pop_counts[g] / n_pop) / (sample_counts[g] / n_sample)
        })
        .collect();
    Ok(weights)
}

/// Weighted mean of per-respondent values.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> Result<f64> {
    if values.len() != weights.len() {
        return Err(SurveyError::LengthMismatch {
            left: values.len(),
            right: weights.len(),
        });
    }
    if values.is_empty() {
        return Err(SurveyError::EmptyInput);
    }
    let wsum: f64 = weights.iter().sum();
    if wsum <= 0.0 {
        return Err(SurveyError::Degenerate("nonpositive weight total"));
    }
    Ok(values
        .iter()
        .zip(weights)
        .map(|(&v, &w)| v * w)
        .sum::<f64>()
        / wsum)
}

/// Design effect of a weight vector: `1 + cv²` (Kish). 1 means the
/// weighting costs no effective sample size; large values mean the
/// correction is expensive in variance.
pub fn design_effect(weights: &[f64]) -> Result<f64> {
    if weights.is_empty() {
        return Err(SurveyError::EmptyInput);
    }
    let n = weights.len() as f64;
    let mean = weights.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return Err(SurveyError::Degenerate("nonpositive mean weight"));
    }
    let var = weights.iter().map(|&w| (w - mean) * (w - mean)).sum::<f64>() / n;
    Ok(1.0 + var / (mean * mean))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{draw_sample, synthetic_population, SamplingDesign};
    use humnet_stats::Rng;

    /// Population where the outcome depends strongly on group: group 0
    /// (reachable) answers 1.0, group 1 answers 3.0, group 2 (hard to
    /// reach) answers 8.0.
    fn outcome(m: &PopulationMember) -> f64 {
        match m.group {
            0 => 1.0,
            1 => 3.0,
            _ => 8.0,
        }
    }

    #[test]
    fn weights_correct_convenience_bias() {
        let mut rng = Rng::new(1);
        let pop = synthetic_population(&[(100, 0.9), (60, 0.5), (40, 0.15)], 3.0, &mut rng)
            .unwrap();
        let pop_mean: f64 =
            pop.iter().map(outcome).sum::<f64>() / pop.len() as f64;
        // Average the estimates over several draws.
        let mut naive_err = 0.0;
        let mut weighted_err = 0.0;
        let draws = 10;
        for _ in 0..draws {
            let sample = draw_sample(&pop, SamplingDesign::Convenience, 60, &mut rng).unwrap();
            let values: Vec<f64> = sample.iter().map(|&i| outcome(&pop[i])).collect();
            let naive = values.iter().sum::<f64>() / values.len() as f64;
            let weights = post_stratification_weights(&pop, &sample).unwrap();
            let corrected = weighted_mean(&values, &weights).unwrap();
            naive_err += (naive - pop_mean).abs();
            weighted_err += (corrected - pop_mean).abs();
        }
        assert!(
            weighted_err < naive_err * 0.5,
            "weighted error {weighted_err} should be far below naive {naive_err}"
        );
    }

    #[test]
    fn weights_cannot_recover_unsampled_groups() {
        let mut rng = Rng::new(2);
        // Group 2 nearly unreachable: some convenience samples miss it
        // entirely; for those, the weighted estimate still misses its
        // contribution entirely.
        let pop =
            synthetic_population(&[(100, 0.9), (60, 0.5), (40, 0.01)], 3.0, &mut rng).unwrap();
        let sample = draw_sample(&pop, SamplingDesign::Convenience, 30, &mut rng).unwrap();
        if sample.iter().all(|&i| pop[i].group != 2) {
            let values: Vec<f64> = sample.iter().map(|&i| outcome(&pop[i])).collect();
            let weights = post_stratification_weights(&pop, &sample).unwrap();
            let corrected = weighted_mean(&values, &weights).unwrap();
            let pop_mean: f64 = pop.iter().map(outcome).sum::<f64>() / pop.len() as f64;
            assert!(
                corrected < pop_mean,
                "the absent group's high outcome stays invisible"
            );
        }
    }

    #[test]
    fn weights_mean_normalized_on_balanced_sample() {
        let mut rng = Rng::new(3);
        let pop = synthetic_population(&[(50, 0.9), (50, 0.9)], 2.0, &mut rng).unwrap();
        let sample = draw_sample(&pop, SamplingDesign::Stratified, 20, &mut rng).unwrap();
        let weights = post_stratification_weights(&pop, &sample).unwrap();
        for &w in &weights {
            assert!((w - 1.0).abs() < 1e-9, "balanced sample -> unit weights");
        }
        assert!((design_effect(&weights).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn design_effect_grows_with_imbalance() {
        let balanced = vec![1.0; 10];
        let skewed = vec![0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 5.0];
        assert!(
            design_effect(&skewed).unwrap() > design_effect(&balanced).unwrap() + 1.0
        );
    }

    #[test]
    fn validation() {
        assert!(post_stratification_weights(&[], &[0]).is_err());
        let mut rng = Rng::new(4);
        let pop = synthetic_population(&[(10, 0.5)], 1.0, &mut rng).unwrap();
        assert!(post_stratification_weights(&pop, &[]).is_err());
        assert!(post_stratification_weights(&pop, &[99]).is_err());
        assert!(weighted_mean(&[1.0], &[1.0, 2.0]).is_err());
        assert!(weighted_mean(&[], &[]).is_err());
        assert!(weighted_mean(&[1.0], &[0.0]).is_err());
        assert!(design_effect(&[]).is_err());
    }
}
