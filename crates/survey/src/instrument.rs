//! Likert instruments, biased response simulation, Cronbach's α.

use crate::{Result, SurveyError};
use humnet_stats::Rng;
use serde::{Deserialize, Serialize};

/// One Likert item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LikertItem {
    /// Item prompt.
    pub text: String,
    /// Whether agreement indicates the *opposite* of the measured trait
    /// (scored as `scale + 1 − raw`).
    pub reverse_coded: bool,
}

/// A Likert instrument: items plus a scale size (e.g. 5 for 1–5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instrument {
    /// The items.
    pub items: Vec<LikertItem>,
    /// Number of scale points (≥ 2).
    pub scale: u8,
}

impl Instrument {
    /// Create an instrument; errors on empty items or scale < 2.
    pub fn new(items: Vec<LikertItem>, scale: u8) -> Result<Self> {
        if items.is_empty() {
            return Err(SurveyError::EmptyInput);
        }
        if scale < 2 {
            return Err(SurveyError::InvalidParameter("scale must be >= 2"));
        }
        Ok(Instrument { items, scale })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there are no items (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Apply reverse coding to a raw answer for item `i`.
    pub fn coded(&self, item: usize, raw: u8) -> Result<f64> {
        let it = self
            .items
            .get(item)
            .ok_or(SurveyError::InvalidParameter("item index out of range"))?;
        if raw < 1 || raw > self.scale {
            return Err(SurveyError::InvalidParameter("raw answer out of scale"));
        }
        Ok(if it.reverse_coded {
            (self.scale + 1 - raw) as f64
        } else {
            raw as f64
        })
    }

    /// Simulate `n` respondents with a latent trait and response biases.
    ///
    /// Each respondent has a latent trait in `[0, 1]`; their ideal answer to
    /// a (forward-coded) item is `1 + trait·(scale−1)` plus noise, shifted
    /// by acquiescence (tendency to agree regardless of content) and
    /// clamped to the scale. Reverse-coded items flip the ideal answer but
    /// acquiescence still pushes toward agreement — which is exactly why
    /// real instruments include reverse-coded items.
    pub fn simulate(&self, n: usize, bias: &ResponseBias, rng: &mut Rng) -> Result<ResponseSet> {
        if n == 0 {
            return Err(SurveyError::EmptyInput);
        }
        bias.validate()?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let trait_level = rng.next_f64();
            let mut answers = Vec::with_capacity(self.items.len());
            for item in &self.items {
                let target = if item.reverse_coded {
                    1.0 - trait_level
                } else {
                    trait_level
                };
                let ideal = 1.0 + target * (self.scale - 1) as f64;
                let noisy = ideal
                    + rng.normal(0.0, bias.noise)
                    + bias.acquiescence * (self.scale - 1) as f64 * 0.5;
                let clamped = noisy.round().clamp(1.0, self.scale as f64) as u8;
                answers.push(clamped);
            }
            rows.push(answers);
        }
        Ok(ResponseSet {
            answers: rows,
            scale: self.scale,
        })
    }

    /// Mean coded score per respondent.
    pub fn score(&self, responses: &ResponseSet) -> Result<Vec<f64>> {
        if responses.scale != self.scale {
            return Err(SurveyError::InvalidParameter("scale mismatch"));
        }
        responses
            .answers
            .iter()
            .map(|row| {
                if row.len() != self.items.len() {
                    return Err(SurveyError::LengthMismatch {
                        left: row.len(),
                        right: self.items.len(),
                    });
                }
                let mut total = 0.0;
                for (i, &raw) in row.iter().enumerate() {
                    total += self.coded(i, raw)?;
                }
                Ok(total / row.len() as f64)
            })
            .collect()
    }
}

/// Response-bias parameters for simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseBias {
    /// Tendency to agree regardless of content, in `[0, 1]`.
    pub acquiescence: f64,
    /// Gaussian noise σ added to the ideal answer (scale points).
    pub noise: f64,
}

impl Default for ResponseBias {
    fn default() -> Self {
        ResponseBias {
            acquiescence: 0.0,
            noise: 0.5,
        }
    }
}

impl ResponseBias {
    fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.acquiescence) {
            return Err(SurveyError::InvalidParameter("acquiescence must be in [0,1]"));
        }
        if self.noise < 0.0 {
            return Err(SurveyError::InvalidParameter("noise must be >= 0"));
        }
        Ok(())
    }
}

/// A respondents × items matrix of raw answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseSet {
    /// Raw answers, one row per respondent.
    pub answers: Vec<Vec<u8>>,
    /// Scale size the answers were given on.
    pub scale: u8,
}

/// Cronbach's α over coded item scores: `α = k/(k−1)·(1 − Σσ²ᵢ/σ²ₜ)`.
///
/// `items[i][r]` is item `i`'s coded score for respondent `r`. Requires ≥ 2
/// items, ≥ 2 respondents, and nonzero total-score variance.
pub fn cronbach_alpha(items: &[Vec<f64>]) -> Result<f64> {
    if items.len() < 2 {
        return Err(SurveyError::InvalidParameter("alpha needs >= 2 items"));
    }
    let n = items[0].len();
    if n < 2 {
        return Err(SurveyError::InvalidParameter("alpha needs >= 2 respondents"));
    }
    for item in items {
        if item.len() != n {
            return Err(SurveyError::LengthMismatch {
                left: n,
                right: item.len(),
            });
        }
    }
    let k = items.len() as f64;
    let item_vars: f64 = items
        .iter()
        .map(|item| humnet_stats::variance(item).unwrap_or(0.0))
        .sum();
    let totals: Vec<f64> = (0..n)
        .map(|r| items.iter().map(|item| item[r]).sum())
        .collect();
    let total_var = humnet_stats::variance(&totals)
        .map_err(|_| SurveyError::Degenerate("total variance undefined"))?;
    if total_var <= 0.0 {
        return Err(SurveyError::Degenerate("zero total-score variance"));
    }
    Ok(k / (k - 1.0) * (1.0 - item_vars / total_var))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instrument() -> Instrument {
        Instrument::new(
            vec![
                LikertItem {
                    text: "I trust the operators of my network".into(),
                    reverse_coded: false,
                },
                LikertItem {
                    text: "I understand who runs my connection".into(),
                    reverse_coded: false,
                },
                LikertItem {
                    text: "The network feels like a black box".into(),
                    reverse_coded: true,
                },
            ],
            5,
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Instrument::new(vec![], 5).is_err());
        assert!(Instrument::new(
            vec![LikertItem {
                text: "x".into(),
                reverse_coded: false
            }],
            1
        )
        .is_err());
    }

    #[test]
    fn reverse_coding() {
        let inst = instrument();
        assert_eq!(inst.coded(0, 5).unwrap(), 5.0);
        assert_eq!(inst.coded(2, 5).unwrap(), 1.0);
        assert_eq!(inst.coded(2, 1).unwrap(), 5.0);
        assert!(inst.coded(0, 0).is_err());
        assert!(inst.coded(0, 6).is_err());
        assert!(inst.coded(9, 3).is_err());
    }

    #[test]
    fn simulation_shape_and_range() {
        let inst = instrument();
        let mut rng = Rng::new(1);
        let rs = inst.simulate(50, &ResponseBias::default(), &mut rng).unwrap();
        assert_eq!(rs.answers.len(), 50);
        for row in &rs.answers {
            assert_eq!(row.len(), 3);
            for &a in row {
                assert!((1..=5).contains(&a));
            }
        }
    }

    #[test]
    fn acquiescence_raises_raw_agreement() {
        let inst = instrument();
        let unbiased = inst
            .simulate(400, &ResponseBias::default(), &mut Rng::new(2))
            .unwrap();
        let biased = inst
            .simulate(
                400,
                &ResponseBias {
                    acquiescence: 0.6,
                    noise: 0.5,
                },
                &mut Rng::new(2),
            )
            .unwrap();
        let mean_raw = |rs: &ResponseSet| {
            rs.answers
                .iter()
                .flatten()
                .map(|&a| a as f64)
                .sum::<f64>()
                / (rs.answers.len() * 3) as f64
        };
        assert!(mean_raw(&biased) > mean_raw(&unbiased) + 0.5);
    }

    #[test]
    fn scoring_uses_coded_values() {
        let inst = instrument();
        let rs = ResponseSet {
            answers: vec![vec![5, 5, 1]], // reverse-coded 1 -> 5
            scale: 5,
        };
        let scores = inst.score(&rs).unwrap();
        assert_eq!(scores, vec![5.0]);
    }

    #[test]
    fn scoring_rejects_mismatches() {
        let inst = instrument();
        let rs = ResponseSet {
            answers: vec![vec![5, 5]],
            scale: 5,
        };
        assert!(inst.score(&rs).is_err());
        let rs = ResponseSet {
            answers: vec![vec![5, 5, 5]],
            scale: 7,
        };
        assert!(inst.score(&rs).is_err());
    }

    #[test]
    fn cronbach_alpha_high_for_consistent_items() {
        // Items perfectly parallel: total var = k² var_item; α = 1.
        let base = [1.0, 2.0, 3.0, 4.0, 5.0];
        let items = vec![base.to_vec(), base.to_vec(), base.to_vec()];
        let a = cronbach_alpha(&items).unwrap();
        assert!((a - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cronbach_alpha_near_zero_for_independent_items() {
        // Orthogonal patterns over 4 respondents.
        let items = vec![
            vec![1.0, 1.0, 5.0, 5.0],
            vec![1.0, 5.0, 1.0, 5.0],
        ];
        let a = cronbach_alpha(&items).unwrap();
        assert!(a.abs() < 0.5, "alpha = {a}");
    }

    #[test]
    fn cronbach_alpha_known_value() {
        // Hand-computed: items i1=[1,2,3], i2=[2,4,6].
        // var(i1)=1, var(i2)=4, totals=[3,6,9], var=9.
        // α = 2·(1 − 5/9) = 8/9.
        let items = vec![vec![1.0, 2.0, 3.0], vec![2.0, 4.0, 6.0]];
        let a = cronbach_alpha(&items).unwrap();
        assert!((a - 8.0 / 9.0).abs() < 1e-12, "alpha = {a}");
    }

    #[test]
    fn cronbach_alpha_edge_cases() {
        assert!(cronbach_alpha(&[vec![1.0, 2.0]]).is_err());
        assert!(cronbach_alpha(&[vec![1.0], vec![1.0]]).is_err());
        assert!(cronbach_alpha(&[vec![1.0, 2.0], vec![1.0]]).is_err());
        // Zero total variance.
        assert!(cronbach_alpha(&[vec![1.0, 1.0], vec![2.0, 2.0]]).is_err());
    }

    #[test]
    fn simulated_instrument_is_internally_consistent() {
        let inst = instrument();
        let mut rng = Rng::new(5);
        let rs = inst
            .simulate(300, &ResponseBias { acquiescence: 0.0, noise: 0.4 }, &mut rng)
            .unwrap();
        // Build coded per-item score vectors.
        let items: Vec<Vec<f64>> = (0..3)
            .map(|i| {
                rs.answers
                    .iter()
                    .map(|row| inst.coded(i, row[i]).unwrap())
                    .collect()
            })
            .collect();
        let a = cronbach_alpha(&items).unwrap();
        assert!(a > 0.7, "simulated alpha = {a}");
    }
}
