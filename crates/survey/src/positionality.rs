//! Positionality statements: a typed model, a detector, a reflexivity score.
//!
//! §4 of the paper defines positionality as "hidden aspects of researchers'
//! perspectives that may affect their research questions, methods, and
//! results" and lists the facets authors disclose: geographic location,
//! socioeconomic status, beliefs, community/institution affiliations.
//! This module encodes those facets, builds well-formed statements, and —
//! for experiment **F2** — detects statements in paper text with a
//! rule-based matcher (exactly what an ACM-DL audit pipeline would run).

use crate::{Result, SurveyError};
use serde::{Deserialize, Serialize};

/// A facet of researcher positionality (§4's taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PositionalityFacet {
    /// Geographic location (e.g. "located in the Global North").
    Geographic,
    /// Socioeconomic status or class background.
    Socioeconomic,
    /// Political / social / theoretical / religious beliefs.
    Beliefs,
    /// Membership in the researched community.
    CommunityMembership,
    /// Institutional affiliations and industry ties.
    InstitutionalTies,
    /// Disciplinary lens (e.g. "as network engineers").
    Disciplinary,
}

impl PositionalityFacet {
    /// All facets.
    pub const ALL: [PositionalityFacet; 6] = [
        PositionalityFacet::Geographic,
        PositionalityFacet::Socioeconomic,
        PositionalityFacet::Beliefs,
        PositionalityFacet::CommunityMembership,
        PositionalityFacet::InstitutionalTies,
        PositionalityFacet::Disciplinary,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            PositionalityFacet::Geographic => "geographic",
            PositionalityFacet::Socioeconomic => "socioeconomic",
            PositionalityFacet::Beliefs => "beliefs",
            PositionalityFacet::CommunityMembership => "community-membership",
            PositionalityFacet::InstitutionalTies => "institutional-ties",
            PositionalityFacet::Disciplinary => "disciplinary",
        }
    }

    /// Cue phrases whose presence (lowercased substring match) suggests the
    /// facet is being disclosed.
    fn cues(&self) -> &'static [&'static str] {
        match self {
            PositionalityFacet::Geographic => {
                &["located in", "global north", "global south", "based in"]
            }
            PositionalityFacet::Socioeconomic => {
                &["socioeconomic", "class background", "economic position"]
            }
            PositionalityFacet::Beliefs => {
                &["we believe", "feminist", "political perspective", "our values"]
            }
            PositionalityFacet::CommunityMembership => {
                &["member of the", "part of the community", "we are members"]
            }
            PositionalityFacet::InstitutionalTies => {
                &["ties with the industry", "industry ties", "affiliated with", "funded by"]
            }
            PositionalityFacet::Disciplinary => {
                &["as network engineers", "as computer scientists", "disciplinary lens",
                  "engineering perspective"]
            }
        }
    }
}

/// A structured positionality statement.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PositionalityStatement {
    /// Disclosed facets with their free text.
    pub disclosures: Vec<(PositionalityFacet, String)>,
    /// Whether the statement reflects on *how* the position shaped the work
    /// (the step from disclosure to reflexivity).
    pub reflects_on_influence: bool,
}

impl PositionalityStatement {
    /// Start an empty statement.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a disclosure.
    pub fn disclose(mut self, facet: PositionalityFacet, text: impl Into<String>) -> Self {
        self.disclosures.push((facet, text.into()));
        self
    }

    /// Mark that the statement discusses how positionality shaped the work.
    pub fn with_reflection(mut self) -> Self {
        self.reflects_on_influence = true;
        self
    }

    /// Distinct facets disclosed.
    pub fn facets(&self) -> Vec<PositionalityFacet> {
        let mut seen = Vec::new();
        for &(f, _) in &self.disclosures {
            if !seen.contains(&f) {
                seen.push(f);
            }
        }
        seen
    }

    /// Render to prose (one sentence per disclosure), suitable for a
    /// methods section.
    pub fn render(&self) -> String {
        let mut out = String::from("Positionality: ");
        if self.disclosures.is_empty() {
            out.push_str("the authors make no disclosures.");
            return out;
        }
        let parts: Vec<String> = self
            .disclosures
            .iter()
            .map(|(f, text)| format!("{} ({})", text, f.label()))
            .collect();
        out.push_str(&parts.join("; "));
        out.push('.');
        if self.reflects_on_influence {
            out.push_str(" We reflect on how these positions shaped our research questions.");
        }
        out
    }
}

/// Result of running the detector over text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectedStatement {
    /// Trigger phrases found.
    pub triggers: Vec<String>,
    /// Facets with at least one cue present.
    pub facets: Vec<PositionalityFacet>,
}

/// Phrases whose presence marks a positionality/reflexivity statement.
const TRIGGERS: &[&str] = &[
    "positionality",
    "we situate ourselves",
    "situated knowledge",
    "reflexivity",
    "our own position",
    "the authors acknowledge their",
];

/// Detect a positionality statement in free text. Returns `None` when no
/// trigger phrase is present; otherwise reports the matched triggers and
/// any facet cues found.
pub fn detect_positionality(text: &str) -> Option<DetectedStatement> {
    let lower = text.to_lowercase();
    let triggers: Vec<String> = TRIGGERS
        .iter()
        .filter(|t| lower.contains(*t))
        .map(|t| t.to_string())
        .collect();
    if triggers.is_empty() {
        return None;
    }
    let facets: Vec<PositionalityFacet> = PositionalityFacet::ALL
        .into_iter()
        .filter(|f| f.cues().iter().any(|c| lower.contains(c)))
        .collect();
    Some(DetectedStatement { triggers, facets })
}

/// Reflexivity score of a structured statement, in `[0, 1]`:
/// `(facets disclosed / 6) × 0.7 + reflection bonus 0.3`.
pub fn reflexivity_score(statement: &PositionalityStatement) -> Result<f64> {
    if statement.disclosures.is_empty() {
        return Err(SurveyError::EmptyInput);
    }
    let facet_share = statement.facets().len() as f64 / PositionalityFacet::ALL.len() as f64;
    let bonus = if statement.reflects_on_influence { 0.3 } else { 0.0 };
    Ok(facet_share * 0.7 + bonus)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_statement() -> PositionalityStatement {
        PositionalityStatement::new()
            .disclose(
                PositionalityFacet::Geographic,
                "we are researchers located in the Global North",
            )
            .disclose(
                PositionalityFacet::Disciplinary,
                "we write as network engineers",
            )
            .disclose(
                PositionalityFacet::CommunityMembership,
                "one author is a member of the community network she studies",
            )
            .with_reflection()
    }

    #[test]
    fn builder_accumulates_facets() {
        let s = full_statement();
        assert_eq!(s.facets().len(), 3);
        assert!(s.reflects_on_influence);
    }

    #[test]
    fn duplicate_facets_counted_once() {
        let s = PositionalityStatement::new()
            .disclose(PositionalityFacet::Beliefs, "a")
            .disclose(PositionalityFacet::Beliefs, "b");
        assert_eq!(s.facets(), vec![PositionalityFacet::Beliefs]);
    }

    #[test]
    fn render_contains_disclosures_and_reflection() {
        let text = full_statement().render();
        assert!(text.starts_with("Positionality:"));
        assert!(text.contains("Global North"));
        assert!(text.contains("reflect on how"));
        let empty = PositionalityStatement::new().render();
        assert!(empty.contains("no disclosures"));
    }

    #[test]
    fn detector_finds_rendered_statements() {
        // The corpus generator's positionality sentence must be detected.
        let corpus_sentence = "We situate ourselves in this work: the authors \
            acknowledge their positionality and how it shapes the research questions.";
        let d = detect_positionality(corpus_sentence).unwrap();
        assert!(!d.triggers.is_empty());
        assert!(d.triggers.iter().any(|t| t == "positionality"));
    }

    #[test]
    fn detector_ignores_plain_systems_text() {
        let text = "We measure tail latency across the datacenter fabric and \
            propose a load balancing scheme.";
        assert!(detect_positionality(text).is_none());
    }

    #[test]
    fn detector_reports_facets() {
        let text = "Positionality: we are located in the Global North, writing \
            as network engineers with ties with the industry.";
        let d = detect_positionality(text).unwrap();
        assert!(d.facets.contains(&PositionalityFacet::Geographic));
        assert!(d.facets.contains(&PositionalityFacet::Disciplinary));
        assert!(d.facets.contains(&PositionalityFacet::InstitutionalTies));
    }

    #[test]
    fn detector_is_case_insensitive() {
        assert!(detect_positionality("POSITIONALITY matters.").is_some());
    }

    #[test]
    fn reflexivity_score_rewards_breadth_and_reflection() {
        let s = full_statement();
        let score = reflexivity_score(&s).unwrap();
        assert!((score - (0.5 * 0.7 + 0.3)).abs() < 1e-12);
        let shallow = PositionalityStatement::new()
            .disclose(PositionalityFacet::Geographic, "based in the US");
        let shallow_score = reflexivity_score(&shallow).unwrap();
        assert!(score > shallow_score);
        assert!((shallow_score - (1.0 / 6.0) * 0.7).abs() < 1e-12);
    }

    #[test]
    fn reflexivity_requires_disclosures() {
        assert!(reflexivity_score(&PositionalityStatement::new()).is_err());
    }

    #[test]
    fn rendered_statement_round_trips_through_detector() {
        let rendered = full_statement().render();
        let d = detect_positionality(&rendered).unwrap();
        assert!(d.facets.contains(&PositionalityFacet::Geographic));
    }
}
