//! Role conflicts and disclosure audits.
//!
//! §4's worked example: Jang "operated in many different roles, often with
//! competing goals" — network lead *and* research lead of the same system —
//! and the paper argues the research is only interpretable because those
//! roles were disclosed. This module models project roles, detects the
//! role combinations that demand disclosure, and audits a
//! [`humnet_survey::PositionalityStatement`] against them.

use crate::Result;
use humnet_survey::{PositionalityFacet, PositionalityStatement};
use serde::{Deserialize, Serialize};

/// Roles a researcher can hold in a socio-technical project.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProjectRole {
    /// Leads the research agenda and publications.
    ResearchLead,
    /// Operates the deployed network.
    NetworkOperator,
    /// Organizes community participation.
    CommunityOrganizer,
    /// Funds or administers the project.
    Funder,
    /// Lives in / uses the system being studied.
    CommunityMember,
}

impl ProjectRole {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            ProjectRole::ResearchLead => "research-lead",
            ProjectRole::NetworkOperator => "network-operator",
            ProjectRole::CommunityOrganizer => "community-organizer",
            ProjectRole::Funder => "funder",
            ProjectRole::CommunityMember => "community-member",
        }
    }

    /// The positionality facet a role's disclosure falls under.
    pub fn facet(&self) -> PositionalityFacet {
        match self {
            ProjectRole::ResearchLead => PositionalityFacet::Disciplinary,
            ProjectRole::NetworkOperator => PositionalityFacet::InstitutionalTies,
            ProjectRole::CommunityOrganizer => PositionalityFacet::CommunityMembership,
            ProjectRole::Funder => PositionalityFacet::InstitutionalTies,
            ProjectRole::CommunityMember => PositionalityFacet::CommunityMembership,
        }
    }
}

/// A researcher's set of roles on one project.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoleAssignment {
    /// Researcher name.
    pub researcher: String,
    /// Roles held.
    pub roles: Vec<ProjectRole>,
}

impl RoleAssignment {
    /// Create an assignment.
    pub fn new(researcher: impl Into<String>, roles: Vec<ProjectRole>) -> Self {
        RoleAssignment {
            researcher: researcher.into(),
            roles,
        }
    }

    /// Role pairs with competing goals (the conflicts §4 says must be
    /// disclosed): studying a system one operates, organizes, funds, or
    /// inhabits.
    pub fn conflicts(&self) -> Vec<(ProjectRole, ProjectRole)> {
        let mut out = Vec::new();
        if self.roles.contains(&ProjectRole::ResearchLead) {
            for &other in &[
                ProjectRole::NetworkOperator,
                ProjectRole::CommunityOrganizer,
                ProjectRole::Funder,
                ProjectRole::CommunityMember,
            ] {
                if self.roles.contains(&other) {
                    out.push((ProjectRole::ResearchLead, other));
                }
            }
        }
        out
    }

    /// True when the researcher holds roles with competing goals.
    pub fn has_conflicts(&self) -> bool {
        !self.conflicts().is_empty()
    }
}

/// Result of auditing disclosures against role conflicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisclosureAudit {
    /// Conflicting role pairs found.
    pub conflicts: Vec<(ProjectRole, ProjectRole)>,
    /// Facets the statement should disclose but does not.
    pub missing_facets: Vec<PositionalityFacet>,
    /// Whether the statement reflects on influence (required when
    /// conflicts exist).
    pub reflection_present: bool,
}

impl DisclosureAudit {
    /// Audit a statement against a role assignment. A compliant statement
    /// discloses the facet of every conflicting role and reflects on how
    /// the positions shaped the work.
    pub fn run(assignment: &RoleAssignment, statement: &PositionalityStatement) -> Result<Self> {
        let conflicts = assignment.conflicts();
        let disclosed = statement.facets();
        let mut missing = Vec::new();
        for &(a, b) in &conflicts {
            for role in [a, b] {
                let facet = role.facet();
                if !disclosed.contains(&facet) && !missing.contains(&facet) {
                    missing.push(facet);
                }
            }
        }
        Ok(DisclosureAudit {
            conflicts,
            missing_facets: missing,
            reflection_present: statement.reflects_on_influence,
        })
    }

    /// True when the disclosure obligations are met.
    pub fn compliant(&self) -> bool {
        self.conflicts.is_empty()
            || (self.missing_facets.is_empty() && self.reflection_present)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jang_like() -> RoleAssignment {
        RoleAssignment::new(
            "E. Jang",
            vec![
                ProjectRole::ResearchLead,
                ProjectRole::NetworkOperator,
                ProjectRole::CommunityOrganizer,
            ],
        )
    }

    #[test]
    fn conflicts_detected_for_multi_role_researcher() {
        let a = jang_like();
        assert!(a.has_conflicts());
        assert_eq!(a.conflicts().len(), 2);
    }

    #[test]
    fn no_conflicts_for_single_role() {
        let a = RoleAssignment::new("x", vec![ProjectRole::ResearchLead]);
        assert!(!a.has_conflicts());
        let b = RoleAssignment::new("y", vec![ProjectRole::NetworkOperator]);
        assert!(!b.has_conflicts());
    }

    #[test]
    fn audit_passes_with_full_disclosure() {
        let statement = PositionalityStatement::new()
            .disclose(
                PositionalityFacet::Disciplinary,
                "I lead the research agenda as a computer scientist",
            )
            .disclose(
                PositionalityFacet::InstitutionalTies,
                "I also operate the network under study",
            )
            .disclose(
                PositionalityFacet::CommunityMembership,
                "I organize the volunteer community",
            )
            .with_reflection();
        let audit = DisclosureAudit::run(&jang_like(), &statement).unwrap();
        assert!(audit.compliant(), "{audit:?}");
        assert!(audit.missing_facets.is_empty());
    }

    #[test]
    fn audit_fails_without_reflection() {
        let statement = PositionalityStatement::new()
            .disclose(PositionalityFacet::Disciplinary, "researcher")
            .disclose(PositionalityFacet::InstitutionalTies, "operator")
            .disclose(PositionalityFacet::CommunityMembership, "organizer");
        let audit = DisclosureAudit::run(&jang_like(), &statement).unwrap();
        assert!(!audit.compliant());
        assert!(!audit.reflection_present);
    }

    #[test]
    fn audit_reports_missing_facets() {
        let statement = PositionalityStatement::new()
            .disclose(PositionalityFacet::Disciplinary, "researcher")
            .with_reflection();
        let audit = DisclosureAudit::run(&jang_like(), &statement).unwrap();
        assert!(!audit.compliant());
        assert!(audit.missing_facets.contains(&PositionalityFacet::InstitutionalTies));
        assert!(audit
            .missing_facets
            .contains(&PositionalityFacet::CommunityMembership));
    }

    #[test]
    fn conflict_free_assignment_is_always_compliant() {
        let a = RoleAssignment::new("x", vec![ProjectRole::ResearchLead]);
        let empty = PositionalityStatement::new();
        let audit = DisclosureAudit::run(&a, &empty).unwrap();
        assert!(audit.compliant());
    }

    #[test]
    fn role_facet_mapping_total() {
        for role in [
            ProjectRole::ResearchLead,
            ProjectRole::NetworkOperator,
            ProjectRole::CommunityOrganizer,
            ProjectRole::Funder,
            ProjectRole::CommunityMember,
        ] {
            let _ = role.facet();
            assert!(!role.label().is_empty());
        }
    }
}
