//! # humnet-core
//!
//! The `humnet` toolkit's primary contribution: first-class Rust types for
//! the three research tools the paper advocates, plus the auditing and
//! reporting machinery that makes them checkable.
//!
//! * [`par`] — participatory action research projects: partners, engagement
//!   records across research stages, Arnstein-style participation-ladder
//!   scoring, and the §5.1 documentation audit.
//! * [`ethnography`] — field studies: sites, visit schedules (traditional,
//!   patchwork, rapid), and an insight-saturation model that quantifies the
//!   §3 claim that fragmented field time can preserve depth (experiment
//!   **F6**).
//! * [`reflexivity`] — role conflicts and disclosure audits tying
//!   [`humnet_survey::positionality`] statements to project roles (§4's
//!   Seattle Community Network example).
//! * [`audit`] — the `MethodsAuditor`: runs the paper's §5 checklist over a
//!   [`humnet_corpus::Corpus`] (experiments **F2** and **F7**).
//! * [`report`] — plain-text tables and series used by the experiment
//!   driver and benches to regenerate every table/figure in
//!   `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod ethnography;
pub mod experiments;
pub mod par;
pub mod reflexivity;
pub mod report;

pub use audit::{AuditReport, MethodsAuditor, VenueAudit};
pub use ethnography::{EthnographyConfig, FieldStudy, MemoPractice, Schedule, StudyOutcome};
pub use par::{EngagementKind, EngagementRecord, ParProject, Partner, ResearchStage};
pub use reflexivity::{DisclosureAudit, ProjectRole, RoleAssignment};
pub use report::{Series, Table};

/// Errors produced by the core crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// The operation requires nonempty input.
    EmptyInput,
    /// A referenced entity was missing.
    NotFound(&'static str),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            CoreError::EmptyInput => write!(f, "input is empty"),
            CoreError::NotFound(what) => write!(f, "not found: {what}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
