//! # humnet-core
//!
//! The `humnet` toolkit's primary contribution: first-class Rust types for
//! the three research tools the paper advocates, plus the auditing and
//! reporting machinery that makes them checkable.
//!
//! * [`par`] — participatory action research projects: partners, engagement
//!   records across research stages, Arnstein-style participation-ladder
//!   scoring, and the §5.1 documentation audit.
//! * [`ethnography`] — field studies: sites, visit schedules (traditional,
//!   patchwork, rapid), and an insight-saturation model that quantifies the
//!   §3 claim that fragmented field time can preserve depth (experiment
//!   **F6**).
//! * [`reflexivity`] — role conflicts and disclosure audits tying
//!   [`humnet_survey::positionality`] statements to project roles (§4's
//!   Seattle Community Network example).
//! * [`audit`] — the `MethodsAuditor`: runs the paper's §5 checklist over a
//!   [`humnet_corpus::Corpus`] (experiments **F2** and **F7**).
//! * [`report`] — plain-text tables and series used by the experiment
//!   driver and benches to regenerate every table/figure in
//!   `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod ethnography;
pub mod experiments;
pub mod par;
pub mod reflexivity;
pub mod report;

pub use audit::{AuditReport, MethodsAuditor, VenueAudit};
pub use ethnography::{EthnographyConfig, FieldStudy, MemoPractice, Schedule, StudyOutcome};
pub use par::{EngagementKind, EngagementRecord, ParProject, Partner, ResearchStage};
pub use reflexivity::{DisclosureAudit, ProjectRole, RoleAssignment};
pub use report::{Series, Table};

/// Errors produced by the core crate.
#[derive(Debug, Clone)]
pub enum CoreError {
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// The operation requires nonempty input.
    EmptyInput,
    /// A referenced entity was missing.
    NotFound(&'static str),
    /// A failure in one of the domain crates, with the original error
    /// preserved so `std::error::Error::source()` walks back to it.
    Upstream {
        /// Which experiment stage or subsystem the failure surfaced in.
        stage: &'static str,
        /// The originating crate error, kept alive behind an `Arc` so
        /// `CoreError` stays cheap to clone.
        source: std::sync::Arc<dyn std::error::Error + Send + Sync + 'static>,
    },
}

impl CoreError {
    /// Wrap an upstream crate error, tagging it with the stage it broke.
    pub fn upstream<E>(stage: &'static str, source: E) -> Self
    where
        E: std::error::Error + Send + Sync + 'static,
    {
        CoreError::Upstream {
            stage,
            source: std::sync::Arc::new(source),
        }
    }
}

/// Adapter for `map_err`: `result.map_err(upstream("f5 congestion"))?`
/// keeps the originating error reachable through `source()` instead of
/// flattening it to a static string.
pub fn upstream<E>(stage: &'static str) -> impl FnOnce(E) -> CoreError
where
    E: std::error::Error + Send + Sync + 'static,
{
    move |e| CoreError::upstream(stage, e)
}

impl PartialEq for CoreError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (CoreError::InvalidParameter(a), CoreError::InvalidParameter(b)) => a == b,
            (CoreError::EmptyInput, CoreError::EmptyInput) => true,
            (CoreError::NotFound(a), CoreError::NotFound(b)) => a == b,
            // Source errors are type-erased; compare by stage and message,
            // which is what callers observe.
            (
                CoreError::Upstream { stage: sa, source: ea },
                CoreError::Upstream { stage: sb, source: eb },
            ) => sa == sb && ea.to_string() == eb.to_string(),
            _ => false,
        }
    }
}

impl Eq for CoreError {}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            CoreError::EmptyInput => write!(f, "input is empty"),
            CoreError::NotFound(what) => write!(f, "not found: {what}"),
            CoreError::Upstream { stage, source } => {
                write!(f, "{stage}: {source}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Upstream { source, .. } => {
                // Re-borrow to drop the auto-trait bounds the field carries.
                Some(source.as_ref() as &(dyn std::error::Error + 'static))
            }
            _ => None,
        }
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
