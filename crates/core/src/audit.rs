//! The methods auditor: the paper's §5 checklist run over a corpus.
//!
//! For every paper in a [`humnet_corpus::Corpus`] the auditor checks:
//!
//! 1. **§5.1** — does it document its partnerships?
//! 2. **§5.2** — does it document its informative conversations?
//! 3. **§5.3** — does it carry a positionality statement? Checked two
//!    ways: the structured method tag, and the text detector from
//!    [`humnet_survey::positionality`] run over the abstract — the audit
//!    reports both so detector recall is itself measurable.
//!
//! Experiments **F2** and **F7** are thin wrappers over this auditor.

use crate::Result;
use humnet_corpus::{Corpus, MethodTag, VenueKind};
use humnet_survey::detect_positionality;
use serde::{Deserialize, Serialize};

/// Audit results for one venue kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VenueAudit {
    /// Venue kind audited.
    pub kind: VenueKind,
    /// Papers at this venue kind.
    pub papers: usize,
    /// §5.1: fraction documenting partnerships.
    pub partnership_rate: f64,
    /// §5.2: fraction documenting conversations.
    pub conversation_rate: f64,
    /// §5.3: fraction carrying a positionality tag.
    pub positionality_rate: f64,
    /// Fraction whose abstract text the detector flags as containing a
    /// positionality statement.
    pub detected_positionality_rate: f64,
    /// Fraction using any human-centered method.
    pub human_method_rate: f64,
}

/// Whole-corpus audit report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Per-venue-kind breakdown (order of [`VenueKind::ALL`]).
    pub venues: Vec<VenueAudit>,
    /// Overall §5 adoption: fraction of papers satisfying all three
    /// recommendations at once.
    pub full_adoption_rate: f64,
    /// Detector recall on positionality: of papers with the structured
    /// tag, the fraction whose abstract the detector also flags.
    pub detector_recall: f64,
    /// Detector precision: of papers the detector flags, the fraction that
    /// really carry the tag.
    pub detector_precision: f64,
}

/// The auditor.
#[derive(Debug, Clone, Default)]
pub struct MethodsAuditor;

impl MethodsAuditor {
    /// Create an auditor.
    pub fn new() -> Self {
        MethodsAuditor
    }

    /// Run the §5 checklist over a corpus.
    pub fn audit(&self, corpus: &Corpus) -> Result<AuditReport> {
        self.audit_instrumented(corpus, &humnet_telemetry::Telemetry::disabled())
    }

    /// [`MethodsAuditor::audit`] with telemetry: a `survey.audit` span
    /// (the positionality detector from `humnet-survey` runs inside it),
    /// paper counters, detector-quality gauges, and a milestone event.
    /// The report is identical.
    pub fn audit_instrumented(
        &self,
        corpus: &Corpus,
        tel: &humnet_telemetry::Telemetry,
    ) -> Result<AuditReport> {
        let _span = tel.span("survey.audit");
        let t0 = tel.start();
        let report = self.audit_inner(corpus)?;
        tel.observe_since("survey.audit_ns", t0);
        tel.counter("survey.papers_audited", corpus.papers.len() as u64);
        tel.gauge("survey.detector_recall", report.detector_recall);
        tel.gauge("survey.detector_precision", report.detector_precision);
        tel.event(humnet_telemetry::Event::new(
            "milestone",
            format!(
                "survey.audit: {} papers, full adoption {:.3}",
                corpus.papers.len(),
                report.full_adoption_rate
            ),
        ));
        Ok(report)
    }

    fn audit_inner(&self, corpus: &Corpus) -> Result<AuditReport> {
        if corpus.papers.is_empty() {
            return Err(crate::CoreError::EmptyInput);
        }
        let mut venues = Vec::new();
        for kind in VenueKind::ALL {
            let papers = corpus.papers_in_kind(kind);
            let n = papers.len();
            let rate = |count: usize| if n > 0 { count as f64 / n as f64 } else { 0.0 };
            venues.push(VenueAudit {
                kind,
                papers: n,
                partnership_rate: rate(
                    papers.iter().filter(|p| p.documents_partnerships).count(),
                ),
                conversation_rate: rate(
                    papers.iter().filter(|p| p.documents_conversations).count(),
                ),
                positionality_rate: rate(
                    papers.iter().filter(|p| p.has_positionality()).count(),
                ),
                detected_positionality_rate: rate(
                    papers
                        .iter()
                        .filter(|p| detect_positionality(&p.abstract_text).is_some())
                        .count(),
                ),
                human_method_rate: rate(papers.iter().filter(|p| p.is_human_centered()).count()),
            });
        }
        let full = corpus
            .papers
            .iter()
            .filter(|p| {
                p.documents_partnerships
                    && p.documents_conversations
                    && p.methods.contains(&MethodTag::Positionality)
            })
            .count();
        let tagged: Vec<_> = corpus.papers.iter().filter(|p| p.has_positionality()).collect();
        let detected: Vec<_> = corpus
            .papers
            .iter()
            .filter(|p| detect_positionality(&p.abstract_text).is_some())
            .collect();
        let true_positives = tagged
            .iter()
            .filter(|p| detect_positionality(&p.abstract_text).is_some())
            .count();
        Ok(AuditReport {
            venues,
            full_adoption_rate: full as f64 / corpus.papers.len() as f64,
            detector_recall: if tagged.is_empty() {
                1.0
            } else {
                true_positives as f64 / tagged.len() as f64
            },
            detector_precision: if detected.is_empty() {
                1.0
            } else {
                true_positives as f64 / detected.len() as f64
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use humnet_corpus::CorpusConfig;

    fn corpus() -> Corpus {
        let mut cfg = CorpusConfig::default();
        cfg.years = 5;
        for v in cfg.venues.iter_mut() {
            v.papers_per_year = 20;
        }
        cfg.author_pool = 150;
        cfg.generate(31).unwrap()
    }

    #[test]
    fn empty_corpus_errors() {
        assert!(MethodsAuditor::new().audit(&Corpus::default()).is_err());
    }

    #[test]
    fn report_covers_all_venue_kinds() {
        let report = MethodsAuditor::new().audit(&corpus()).unwrap();
        assert_eq!(report.venues.len(), VenueKind::ALL.len());
        let total: usize = report.venues.iter().map(|v| v.papers).sum();
        assert_eq!(total, corpus().papers.len());
    }

    #[test]
    fn rates_are_bounded() {
        let report = MethodsAuditor::new().audit(&corpus()).unwrap();
        for v in &report.venues {
            for rate in [
                v.partnership_rate,
                v.conversation_rate,
                v.positionality_rate,
                v.detected_positionality_rate,
                v.human_method_rate,
            ] {
                assert!((0.0..=1.0).contains(&rate), "{v:?}");
            }
        }
        assert!((0.0..=1.0).contains(&report.full_adoption_rate));
    }

    #[test]
    fn networking_venues_lag_on_every_recommendation() {
        let report = MethodsAuditor::new().audit(&corpus()).unwrap();
        let get = |kind: VenueKind| report.venues.iter().find(|v| v.kind == kind).unwrap();
        let sys = get(VenueKind::SystemsNetworking);
        let ictd = get(VenueKind::Ictd);
        assert!(ictd.partnership_rate > sys.partnership_rate);
        assert!(ictd.conversation_rate > sys.conversation_rate);
        assert!(ictd.positionality_rate > sys.positionality_rate);
        assert!(ictd.human_method_rate > sys.human_method_rate);
    }

    #[test]
    fn detector_matches_structured_tags() {
        // The corpus generator embeds the positionality sentence verbatim,
        // so the detector should achieve perfect recall and precision here.
        let report = MethodsAuditor::new().audit(&corpus()).unwrap();
        assert!(
            report.detector_recall > 0.99,
            "recall = {}",
            report.detector_recall
        );
        assert!(
            report.detector_precision > 0.99,
            "precision = {}",
            report.detector_precision
        );
    }

    #[test]
    fn full_adoption_is_rare_in_default_corpus() {
        let report = MethodsAuditor::new().audit(&corpus()).unwrap();
        assert!(
            report.full_adoption_rate < 0.2,
            "rate = {}",
            report.full_adoption_rate
        );
        assert!(report.full_adoption_rate > 0.0);
    }
}
