//! The experiment suite: one function per table/figure in `EXPERIMENTS.md`.
//!
//! Each function builds its workload, runs the relevant simulators, and
//! returns both structured numbers and a rendered [`Table`]/[`Series`].
//! The `experiments` binary prints them; the benches in `crates/bench`
//! time them; the integration tests assert their qualitative shapes.

use crate::audit::MethodsAuditor;
use crate::ethnography::{EthnographyConfig, FieldStudy, MemoPractice, Schedule};
use crate::par::ParProject;
use crate::report::{Series, Table};
use crate::{upstream, Result};
use humnet_agenda::{
    attention_by_class, attention_gini, coverage, AgendaConfig, AgendaSim, MethodRegime,
    ReviewConfig, VenueWeights,
};
use humnet_community::{
    CongestionConfig, CongestionSim, SustainabilityConfig, SustainabilitySim,
    VolunteerRegime,
};
use humnet_corpus::{CorpusConfig, MethodTag, VenueKind};
use humnet_ixp::{
    synthetic_internet, CircumventionStrategy, MexicoConfig, MexicoScenario, RoutingTable,
    TrafficConfig, TrafficMatrix, TwoRegionConfig, TwoRegionScenario,
};
use humnet_qual::{SimulatedStudy, StudyConfig};
use humnet_resilience::{FaultHook, FaultPlan, InstrumentedHook, NoFaults, PlanHook};
use humnet_stats::lorenz_curve;
use humnet_telemetry::Telemetry;

fn core_err(msg: &'static str) -> crate::CoreError {
    crate::CoreError::InvalidParameter(msg)
}

/// Result of experiment **F1**: Lorenz curve of research attention under
/// the data-driven regime.
#[derive(Debug, Clone)]
pub struct F1Result {
    /// Lorenz curve of per-problem publication counts.
    pub lorenz: Series,
    /// Gini of per-problem attention.
    pub gini: f64,
    /// Publications per stakeholder class table.
    pub by_class: Table,
}

/// **F1** — concentration of research attention (§1's feedback loop).
pub fn f1_attention(seed: u64) -> Result<F1Result> {
    f1_attention_with_faults(seed, &mut NoFaults)
}

/// [`f1_attention`] under a fault hook: reviewer no-shows and volunteer
/// dropout perturb the agenda simulation mid-run.
pub fn f1_attention_with_faults(seed: u64, hook: &mut dyn FaultHook) -> Result<F1Result> {
    f1_attention_instrumented(seed, hook, &Telemetry::disabled())
}

/// [`f1_attention_with_faults`] with telemetry flowing into `tel`.
pub fn f1_attention_instrumented(
    seed: u64,
    hook: &mut dyn FaultHook,
    tel: &Telemetry,
) -> Result<F1Result> {
    let mut cfg = AgendaConfig::default();
    cfg.regime = MethodRegime::DataDriven;
    cfg.seed = seed;
    let mut sim = AgendaSim::new(cfg).map_err(upstream("agenda config"))?;
    sim.run_instrumented(hook, tel).map_err(upstream("agenda run"))?;
    let counts: Vec<f64> = sim
        .space
        .problems
        .iter()
        .map(|p| p.publications as f64)
        .collect();
    let curve = lorenz_curve(&counts).map_err(upstream("lorenz"))?;
    let mut lorenz = Series::new(
        "F1: Lorenz curve of research attention (data-driven regime)",
        "population share",
        "publication share",
    );
    for (x, y) in curve {
        lorenz.push(x, y);
    }
    let gini = attention_gini(&sim.space).map_err(upstream("gini"))?;
    let mut by_class = Table::new(
        "F1: publications by stakeholder class",
        &["class", "publications", "marginalized"],
    );
    for (class, pubs) in attention_by_class(&sim.space) {
        by_class.row(&[
            class.label().to_owned(),
            pubs.to_string(),
            class.is_marginalized().to_string(),
        ]);
    }
    Ok(F1Result {
        lorenz,
        gini,
        by_class,
    })
}

/// One row of the **T1** regime-comparison table.
#[derive(Debug, Clone)]
pub struct T1Row {
    /// Regime.
    pub regime: MethodRegime,
    /// Mean marginalized-problem coverage.
    pub marginalized_coverage: f64,
    /// Mean dominant-problem coverage.
    pub dominant_coverage: f64,
    /// Mean attention Gini.
    pub gini: f64,
    /// Mean total publications.
    pub publications: f64,
}

/// **T1** — method-regime comparison over several seeds.
pub fn t1_regimes(seeds: &[u64]) -> Result<(Vec<T1Row>, Table)> {
    t1_regimes_with_faults(seeds, &mut NoFaults)
}

/// [`t1_regimes`] under a fault hook. Fault draws are pure per
/// `(step, kind)`, so every regime faces the identical churn schedule and
/// the cross-regime comparison stays fair.
pub fn t1_regimes_with_faults(
    seeds: &[u64],
    hook: &mut dyn FaultHook,
) -> Result<(Vec<T1Row>, Table)> {
    t1_regimes_instrumented(seeds, hook, &Telemetry::disabled())
}

/// [`t1_regimes_with_faults`] with telemetry flowing into `tel`.
pub fn t1_regimes_instrumented(
    seeds: &[u64],
    hook: &mut dyn FaultHook,
    tel: &Telemetry,
) -> Result<(Vec<T1Row>, Table)> {
    if seeds.is_empty() {
        return Err(crate::CoreError::EmptyInput);
    }
    let mut rows = Vec::new();
    for &regime in &MethodRegime::ALL {
        let mut marg = 0.0;
        let mut dom = 0.0;
        let mut gini = 0.0;
        let mut pubs = 0.0;
        for &seed in seeds {
            let mut cfg = AgendaConfig::default();
            cfg.regime = regime;
            cfg.seed = seed;
            let mut sim = AgendaSim::new(cfg).map_err(upstream("agenda config"))?;
            sim.run_instrumented(hook, tel).map_err(upstream("agenda run"))?;
            marg += coverage(&sim.space, true).map_err(upstream("coverage"))?;
            dom += coverage(&sim.space, false).map_err(upstream("coverage"))?;
            gini += attention_gini(&sim.space).map_err(upstream("gini"))?;
            pubs += sim.history().last().map(|s| s.publications as f64).unwrap_or(0.0);
        }
        let n = seeds.len() as f64;
        rows.push(T1Row {
            regime,
            marginalized_coverage: marg / n,
            dominant_coverage: dom / n,
            gini: gini / n,
            publications: pubs / n,
        });
    }
    let mut table = Table::new(
        "T1: problem surfacing by method regime",
        &[
            "regime",
            "marginalized coverage",
            "dominant coverage",
            "attention gini",
            "publications",
        ],
    );
    for r in &rows {
        table.row(&[
            r.regime.label().to_owned(),
            Table::f(r.marginalized_coverage),
            Table::f(r.dominant_coverage),
            Table::f(r.gini),
            format!("{:.0}", r.publications),
        ]);
    }
    Ok((rows, table))
}

/// **F2** — positionality-statement prevalence by venue kind and year.
pub fn f2_positionality(seed: u64) -> Result<(Table, Vec<Series>)> {
    f2_positionality_instrumented(seed, &Telemetry::disabled())
}

/// [`f2_positionality`] with telemetry: the corpus generation and the
/// survey-pipeline audit both report into `tel`.
pub fn f2_positionality_instrumented(seed: u64, tel: &Telemetry) -> Result<(Table, Vec<Series>)> {
    let cfg = CorpusConfig::default();
    let corpus = cfg
        .generate_instrumented(seed, tel)
        .map_err(upstream("corpus generate"))?;
    let report = MethodsAuditor::new().audit_instrumented(&corpus, tel)?;
    let mut table = Table::new(
        "F2: positionality prevalence by venue kind",
        &["venue kind", "papers", "tagged rate", "detected rate"],
    );
    for v in &report.venues {
        table.row(&[
            v.kind.label().to_owned(),
            v.papers.to_string(),
            Table::f(v.positionality_rate),
            Table::f(v.detected_positionality_rate),
        ]);
    }
    // Per-year trend series for two contrasting venue kinds.
    let (lo, hi) = corpus.year_range().ok_or(crate::CoreError::EmptyInput)?;
    let mut series = Vec::new();
    for kind in [VenueKind::SystemsNetworking, VenueKind::HciCscw] {
        let mut s = Series::new(
            format!("F2: positionality rate over time ({})", kind.label()),
            "year",
            "rate",
        );
        for year in lo..=hi {
            s.push(
                year as f64,
                humnet_corpus::method_rate_by_year(&corpus, kind, MethodTag::Positionality, year),
            );
        }
        series.push(s);
    }
    Ok((table, series))
}

/// **T2** — inter-rater reliability vs codebook refinement round.
pub fn t2_irr(seed: u64, rounds: u32) -> Result<Table> {
    t2_irr_with_faults(seed, rounds, &mut NoFaults)
}

/// [`t2_irr`] under a fault hook: coder attrition degrades coding rounds.
pub fn t2_irr_with_faults(seed: u64, rounds: u32, hook: &mut dyn FaultHook) -> Result<Table> {
    t2_irr_instrumented(seed, rounds, hook, &Telemetry::disabled())
}

/// [`t2_irr_with_faults`] with telemetry flowing into `tel`.
pub fn t2_irr_instrumented(
    seed: u64,
    rounds: u32,
    hook: &mut dyn FaultHook,
    tel: &Telemetry,
) -> Result<Table> {
    let mut study =
        SimulatedStudy::new(StudyConfig::default(), seed).map_err(upstream("study config"))?;
    let traj = study
        .reliability_instrumented(rounds, hook, tel)
        .map_err(upstream("trajectory"))?;
    let mut table = Table::new(
        "T2: inter-rater reliability vs codebook refinement",
        &["round", "percent agreement", "fleiss kappa", "krippendorff alpha"],
    );
    for r in &traj {
        table.row(&[
            r.round.to_string(),
            Table::f(r.percent_agreement),
            Table::f(r.fleiss_kappa),
            Table::f(r.krippendorff_alpha),
        ]);
    }
    Ok(table)
}

/// **F3** — mandatory-peering enforcement sweep, complied vs circumvented.
pub fn f3_telmex(points: usize) -> Result<(Series, Series, Table)> {
    f3_telmex_with_faults(points, &mut NoFaults)
}

/// [`f3_telmex`] under a fault hook: IXP outages leave exchanges dark
/// (no multilateral peering, no enforceable regulation).
pub fn f3_telmex_with_faults(
    points: usize,
    hook: &mut dyn FaultHook,
) -> Result<(Series, Series, Table)> {
    f3_telmex_instrumented(points, hook, &Telemetry::disabled())
}

/// [`f3_telmex_with_faults`] with telemetry flowing into `tel`.
pub fn f3_telmex_instrumented(
    points: usize,
    hook: &mut dyn FaultHook,
    tel: &Telemetry,
) -> Result<(Series, Series, Table)> {
    if points < 2 {
        return Err(core_err("need >= 2 sweep points"));
    }
    let mut comply = Series::new(
        "F3: competitor IXP share vs enforcement (incumbent complies)",
        "enforcement",
        "ixp share",
    );
    let mut split = Series::new(
        "F3: competitor IXP share vs enforcement (ASN splitting)",
        "enforcement",
        "ixp share",
    );
    let mut table = Table::new(
        "F3: Telmex scenario",
        &["enforcement", "share (comply)", "share (split)", "transit cost (split)"],
    );
    for i in 0..points {
        let e = i as f64 / (points - 1) as f64;
        let mut cfg = MexicoConfig::default();
        cfg.regulation.enforcement = e;
        cfg.strategy = CircumventionStrategy::ComplyFully;
        let sc = MexicoScenario::run_instrumented(&cfg, hook, tel).map_err(upstream("mexico run"))?;
        let share_c = sc.competitor_ixp_share().map_err(upstream("share"))?;
        cfg.strategy = CircumventionStrategy::AsnSplitting;
        let ss = MexicoScenario::run_instrumented(&cfg, hook, tel).map_err(upstream("mexico run"))?;
        let share_s = ss.competitor_ixp_share().map_err(upstream("share"))?;
        comply.push(e, share_c);
        split.push(e, share_s);
        table.row(&[
            Table::f(e),
            Table::f(share_c),
            Table::f(share_s),
            format!("{:.0}", ss.transit_cost()),
        ]);
    }
    Ok((comply, split, table))
}

/// **F4** — IXP gravity: foreign-exchange share vs local content presence.
pub fn f4_gravity(points: usize) -> Result<(Series, Series)> {
    f4_gravity_with_faults(points, &mut NoFaults)
}

/// [`f4_gravity`] under a fault hook: either region's exchange can go dark.
pub fn f4_gravity_with_faults(
    points: usize,
    hook: &mut dyn FaultHook,
) -> Result<(Series, Series)> {
    f4_gravity_instrumented(points, hook, &Telemetry::disabled())
}

/// [`f4_gravity_with_faults`] with telemetry flowing into `tel`.
pub fn f4_gravity_instrumented(
    points: usize,
    hook: &mut dyn FaultHook,
    tel: &Telemetry,
) -> Result<(Series, Series)> {
    if points < 2 {
        return Err(core_err("need >= 2 sweep points"));
    }
    let mut foreign = Series::new(
        "F4: share of South traffic exchanged at the Northern IXP",
        "local content presence",
        "foreign exchange share",
    );
    let mut local = Series::new(
        "F4: share of South traffic exchanged at the local IXP",
        "local content presence",
        "local exchange share",
    );
    for i in 0..points {
        let p = i as f64 / (points - 1) as f64;
        let mut cfg = TwoRegionConfig::default();
        cfg.content_presence_south = p;
        let sc = TwoRegionScenario::run_instrumented(&cfg, hook, tel)
            .map_err(upstream("two-region run"))?;
        foreign.push(p, sc.foreign_exchange_share().map_err(upstream("share"))?);
        local.push(p, sc.local_exchange_share().map_err(upstream("share"))?);
    }
    Ok((foreign, local))
}

/// **F10** — internet-scale routing on a synthetic internet.
pub fn f10_scale(seed: u64) -> Result<Table> {
    f10_scale_instrumented(seed, &Telemetry::disabled())
}

/// [`f10_scale`] with telemetry flowing into `tel`.
///
/// Builds a [`synthetic_internet`] topology (2 000 ASes — the canonical
/// run is sized so the full suite stays fast; the scale-smoke CI job and
/// `bench_substrates` exercise 10k/100k), samples a gravity traffic
/// matrix, computes routes **only toward the sampled destinations** on
/// the frozen SoA engine, and cross-checks that 8-worker parallel compute
/// is byte-identical to serial (digest equality) before reporting
/// locality metrics. There is no fault surface: the computation either
/// reproduces the serial bytes or errors.
pub fn f10_scale_instrumented(seed: u64, tel: &Telemetry) -> Result<Table> {
    let _span = tel.span("ixp.internet");
    let n = 2_000;
    let pairs = 512;
    let t = synthetic_internet(n, seed).map_err(upstream("synthetic internet"))?;
    let ft = std::sync::Arc::new(t.freeze());
    let matrix = TrafficMatrix::gravity_sampled(&t, &TrafficConfig::default(), pairs, seed)
        .map_err(upstream("sampled gravity"))?;
    let dests = matrix.destinations();
    let t0 = tel.start();
    let serial = RoutingTable::compute_frozen(&ft, &dests, 1).map_err(upstream("routing"))?;
    let parallel = RoutingTable::compute_frozen(&ft, &dests, 8).map_err(upstream("routing"))?;
    tel.observe_since("ixp.route_assign_ns", t0);
    if parallel.digest() != serial.digest() {
        return Err(core_err("parallel routing diverged from serial compute"));
    }
    let (flows, unserved) = matrix.assign(&serial);
    let total_volume: f64 = flows.iter().map(|f| f.volume).sum();
    let mean_hops = if flows.is_empty() {
        0.0
    } else {
        flows.iter().map(|f| f.route.hops() as f64).sum::<f64>() / flows.len() as f64
    };
    let peer_share = if total_volume > 0.0 {
        flows
            .iter()
            .filter(|f| f.route.has_peer_hop)
            .map(|f| f.volume)
            .sum::<f64>()
            / total_volume
    } else {
        0.0
    };
    // IXP 0 is the giant Northern exchange by construction.
    let giant_share = humnet_ixp::metrics::ixp_share(&flows, 0);
    tel.counter("ixp.scenarios", 1);
    tel.counter("ixp.flows", flows.len() as u64);
    tel.event(humnet_telemetry::Event::new(
        "milestone",
        format!("ixp.internet: {n} ASes, {} flows routed", flows.len()),
    ));
    let mut table = Table::new(
        "F10: internet-scale routing (synthetic internet, sampled gravity)",
        &["metric", "value"],
    );
    table.row(&["ASes".into(), n.to_string()]);
    table.row(&["sampled demands".into(), pairs.to_string()]);
    table.row(&["destinations computed".into(), serial.destinations().len().to_string()]);
    table.row(&["route digest".into(), format!("{:016x}", serial.digest())]);
    table.row(&["flows served".into(), flows.len().to_string()]);
    table.row(&["flows unserved".into(), unserved.len().to_string()]);
    table.row(&["mean AS-path hops".into(), Table::f(mean_hops)]);
    table.row(&["peer-hop volume share".into(), Table::f(peer_share)]);
    table.row(&["giant-IXP volume share".into(), Table::f(giant_share)]);
    Ok(table)
}

/// **T3** — community-network sustainability by volunteer regime.
pub fn t3_sustainability(seeds: &[u64]) -> Result<Table> {
    t3_sustainability_with_faults(seeds, &mut NoFaults)
}

/// [`t3_sustainability`] under a fault hook: link outages spike the daily
/// failure rate, volunteer dropout thins the repair pool.
pub fn t3_sustainability_with_faults(seeds: &[u64], hook: &mut dyn FaultHook) -> Result<Table> {
    t3_sustainability_instrumented(seeds, hook, &Telemetry::disabled())
}

/// [`t3_sustainability_with_faults`] with telemetry flowing into `tel`.
pub fn t3_sustainability_instrumented(
    seeds: &[u64],
    hook: &mut dyn FaultHook,
    tel: &Telemetry,
) -> Result<Table> {
    if seeds.is_empty() {
        return Err(crate::CoreError::EmptyInput);
    }
    let mut table = Table::new(
        "T3: sustainability by volunteer regime (1 year, 5% daily failure)",
        &["regime", "uptime", "mttr (days)", "attrition", "cost"],
    );
    for regime in VolunteerRegime::ALL {
        let mut uptime = 0.0;
        let mut mttr = 0.0;
        let mut mttr_n = 0;
        let mut attrition = 0.0;
        let mut cost = 0.0;
        for &seed in seeds {
            let mut cfg = SustainabilityConfig::default();
            cfg.regime = regime;
            cfg.daily_failure_rate = 0.05;
            cfg.seed = seed;
            let out = SustainabilitySim::new(cfg)
                .map_err(upstream("sustain config"))?
                .run_instrumented(hook, tel)
                .map_err(upstream("sustain run"))?;
            uptime += out.uptime;
            if !out.mttr.is_nan() {
                mttr += out.mttr;
                mttr_n += 1;
            }
            attrition += out.attrition as f64;
            cost += out.total_cost;
        }
        let n = seeds.len() as f64;
        table.row(&[
            regime.label().to_owned(),
            Table::f(uptime / n),
            if mttr_n > 0 {
                Table::f(mttr / mttr_n as f64)
            } else {
                "n/a".to_owned()
            },
            Table::f(attrition / n),
            format!("{:.0}", cost / n),
        ]);
    }
    Ok(table)
}

/// **F5** — common-pool congestion policies.
pub fn f5_congestion(seed: u64) -> Result<Table> {
    f5_congestion_with_faults(seed, &mut NoFaults)
}

/// [`f5_congestion`] under a fault hook: link outages shrink the shared
/// backhaul pool; every policy faces the identical outage schedule.
pub fn f5_congestion_with_faults(seed: u64, hook: &mut dyn FaultHook) -> Result<Table> {
    f5_congestion_instrumented(seed, hook, &Telemetry::disabled())
}

/// [`f5_congestion_with_faults`] with telemetry flowing into `tel`.
pub fn f5_congestion_instrumented(
    seed: u64,
    hook: &mut dyn FaultHook,
    tel: &Telemetry,
) -> Result<Table> {
    let mut cfg = CongestionConfig::default();
    cfg.seed = seed;
    let sim = CongestionSim::new(cfg).map_err(upstream("congestion config"))?;
    let mut table = Table::new(
        "F5: congestion-management policies (30 households, bursty demand)",
        &["policy", "fairness (backlogged)", "utilization", "modest-user starvation"],
    );
    for out in sim.compare_instrumented(hook, tel) {
        table.row(&[
            out.policy.label().to_owned(),
            Table::f(out.fairness),
            Table::f(out.utilization),
            Table::f(out.starvation),
        ]);
    }
    Ok(table)
}

/// **T4** — participation-ladder audit of project archetypes.
pub fn t4_ladder() -> Result<Table> {
    let mut table = Table::new(
        "T4: participation-ladder audit of project archetypes",
        &["archetype", "participation score", "§5.1 compliant", "violations"],
    );
    for i in 0..6 {
        let p = ParProject::archetype(i);
        let violations = p.audit_5_1();
        table.row(&[
            p.name.clone(),
            Table::f(p.participation_score()),
            p.is_5_1_compliant().to_string(),
            violations.len().to_string(),
        ]);
    }
    Ok(table)
}

/// **F6** — field-schedule comparison at a fixed 60-day budget.
pub fn f6_patchwork() -> Result<Table> {
    let mut table = Table::new(
        "F6: ethnography schedules at a fixed 60-day budget",
        &["schedule", "memos", "days on site", "insights", "saturation", "mean depth"],
    );
    let cases: Vec<(&str, Schedule, MemoPractice)> = vec![
        ("traditional", Schedule::Traditional, MemoPractice::None),
        (
            "patchwork x6",
            Schedule::Patchwork {
                fragments: 6,
                gap_days: 30,
            },
            MemoPractice::None,
        ),
        (
            "patchwork x6 + memos",
            Schedule::Patchwork {
                fragments: 6,
                gap_days: 30,
            },
            MemoPractice::Reflexive(0.9),
        ),
        (
            "patchwork x12 + memos",
            Schedule::Patchwork {
                fragments: 12,
                gap_days: 14,
            },
            MemoPractice::Reflexive(0.9),
        ),
        ("rapid (10 days)", Schedule::Rapid { days_on_site: 10 }, MemoPractice::None),
    ];
    for (label, schedule, memos) in cases {
        let mut cfg = EthnographyConfig::default();
        cfg.schedule = schedule;
        cfg.memos = memos;
        let out = FieldStudy::new(cfg).map_err(upstream("ethnography config"))?.run();
        let memo_label = match memos {
            MemoPractice::None => "none".to_owned(),
            MemoPractice::Reflexive(k) => format!("reflexive {k:.1}"),
        };
        table.row(&[
            label.to_owned(),
            memo_label,
            out.days_on_site.to_string(),
            format!("{:.1}", out.insights),
            Table::f(out.saturation),
            Table::f(out.mean_depth),
        ]);
    }
    Ok(table)
}

/// **T5** — venue gatekeeping: acceptance by method vs CFP human weight.
pub fn t5_gatekeeping(points: usize) -> Result<(Series, Series, Table)> {
    if points < 2 {
        return Err(core_err("need >= 2 sweep points"));
    }
    let mut human = Series::new(
        "T5: human-centered acceptance vs CFP human-insight weight",
        "human-insight weight",
        "acceptance rate",
    );
    let mut systems = Series::new(
        "T5: systems acceptance vs CFP human-insight weight",
        "human-insight weight",
        "acceptance rate",
    );
    let mut table = Table::new(
        "T5: venue gatekeeping",
        &["human weight", "systems acceptance", "human acceptance"],
    );
    for i in 0..points {
        let w = 0.5 * i as f64 / (points - 1) as f64;
        let out = humnet_agenda::review::run_review(
            &ReviewConfig::default(),
            &VenueWeights::broadened(w),
        )
        .map_err(upstream("review run"))?;
        human.push(w, out.human_acceptance);
        systems.push(w, out.systems_acceptance);
        table.row(&[
            Table::f(w),
            Table::f(out.systems_acceptance),
            Table::f(out.human_acceptance),
        ]);
    }
    Ok((human, systems, table))
}

/// **F8** — IXP growth dynamics: winner-take-all vs regional affinity.
pub fn f8_growth(points: usize) -> Result<(Series, Series, Table)> {
    f8_growth_instrumented(points, &Telemetry::disabled())
}

/// [`f8_growth`] with telemetry flowing into `tel`.
pub fn f8_growth_instrumented(points: usize, tel: &Telemetry) -> Result<(Series, Series, Table)> {
    if points < 2 {
        return Err(core_err("need >= 2 sweep points"));
    }
    let mut top = Series::new(
        "F8: top exchange's membership share vs regional affinity",
        "regional affinity (gamma)",
        "top share",
    );
    let mut local = Series::new(
        "F8: South arrivals joining a local exchange vs regional affinity",
        "regional affinity (gamma)",
        "local join share",
    );
    let mut table = Table::new(
        "F8: IXP growth dynamics",
        &["gamma", "top share", "membership gini", "south joined local"],
    );
    for i in 0..points {
        let gamma = 3.0 * i as f64 / (points - 1) as f64;
        let mut cfg = humnet_ixp::GrowthConfig::default();
        cfg.gamma_region = gamma;
        let out =
            humnet_ixp::simulate_growth_instrumented(&cfg, tel).map_err(upstream("growth run"))?;
        top.push(gamma, out.top_share);
        local.push(gamma, out.south_joined_local);
        table.row(&[
            Table::f(gamma),
            Table::f(out.top_share),
            Table::f(out.membership_gini),
            Table::f(out.south_joined_local),
        ]);
    }
    Ok((top, local, table))
}

/// **F9** — method-adoption dynamics around a CFP intervention.
pub fn f9_adoption() -> Result<(Series, Table)> {
    let cfg = humnet_agenda::AdoptionConfig::default();
    let traj = humnet_agenda::simulate_adoption(&cfg).map_err(upstream("adoption run"))?;
    let mut series = Series::new(
        "F9: human-centered share of the community (CFP broadened at round 15)",
        "round",
        "human share",
    );
    let mut table = Table::new(
        "F9: adoption dynamics",
        &["round", "human share", "human acceptance", "systems acceptance", "cfp broadened"],
    );
    for snap in &traj {
        series.push(snap.round as f64, snap.human_share);
        table.row(&[
            snap.round.to_string(),
            Table::f(snap.human_share),
            Table::f(snap.human_acceptance),
            Table::f(snap.systems_acceptance),
            snap.intervened.to_string(),
        ]);
    }
    Ok((series, table))
}

/// **T6** — diary-study compliance with and without technology probes
/// (§6.1's "other methods", after Chidziwisano 2024).
pub fn t6_diary(seed: u64) -> Result<Table> {
    t6_diary_instrumented(seed, &Telemetry::disabled())
}

/// [`t6_diary`] with telemetry flowing into `tel`.
pub fn t6_diary_instrumented(seed: u64, tel: &Telemetry) -> Result<Table> {
    let mut table = Table::new(
        "T6: diary-study compliance (12 participants, 6 weeks)",
        &[
            "design",
            "overall compliance",
            "final-week compliance",
            "prompted share",
            "mean words",
        ],
    );
    for (label, probe_rate) in [("plain diary", 0.0), ("diary + probes", 0.5)] {
        let mut cfg = humnet_qual::DiaryConfig::default();
        cfg.probe_rate = probe_rate;
        let out = humnet_qual::simulate_diary_instrumented(&cfg, seed, tel)
            .map_err(upstream("diary run"))?;
        table.row(&[
            label.to_owned(),
            Table::f(out.overall_compliance(&cfg)),
            Table::f(out.final_week_compliance()),
            Table::f(out.prompted_share()),
            format!("{:.1}", out.mean_words()),
        ]);
    }
    Ok(table)
}

/// **T7** — cooperative economics under three dues policies.
pub fn t7_economics(seeds: &[u64]) -> Result<Table> {
    if seeds.is_empty() {
        return Err(crate::CoreError::EmptyInput);
    }
    let mut table = Table::new(
        "T7: cooperative finances over 5 years by dues policy",
        &[
            "policy",
            "insolvency rate",
            "mean closing balance",
            "mean members kept",
            "mean priced out",
        ],
    );
    for policy in humnet_community::DuesPolicy::ALL {
        let mut insolvent = 0usize;
        let mut closing = 0.0;
        let mut kept = 0.0;
        let mut dropped = 0.0;
        for &seed in seeds {
            let mut cfg = humnet_community::EconomicsConfig::default();
            cfg.seed = seed;
            cfg.income_sigma = 1.2;
            let out = humnet_community::simulate_economics(&cfg, policy)
                .map_err(upstream("economics run"))?;
            if out.insolvent_at.is_some() {
                insolvent += 1;
            }
            closing += out.closing_balance;
            kept += out.remaining_members as f64;
            dropped += out.dropped_for_affordability as f64;
        }
        let n = seeds.len() as f64;
        table.row(&[
            policy.label().to_owned(),
            Table::f(insolvent as f64 / n),
            format!("{:.0}", closing / n),
            Table::f(kept / n),
            Table::f(dropped / n),
        ]);
    }
    Ok(table)
}

/// **F7** — §5 recommendation uptake audit across the corpus.
pub fn f7_audit(seed: u64) -> Result<Table> {
    f7_audit_instrumented(seed, &Telemetry::disabled())
}

/// [`f7_audit`] with telemetry: corpus generation and the survey-pipeline
/// audit both report into `tel`.
pub fn f7_audit_instrumented(seed: u64, tel: &Telemetry) -> Result<Table> {
    let corpus = CorpusConfig::default()
        .generate_instrumented(seed, tel)
        .map_err(upstream("corpus generate"))?;
    let report = MethodsAuditor::new().audit_instrumented(&corpus, tel)?;
    let mut table = Table::new(
        "F7: §5 recommendation uptake by venue kind",
        &[
            "venue kind",
            "partnerships (§5.1)",
            "conversations (§5.2)",
            "positionality (§5.3)",
            "human methods",
        ],
    );
    for v in &report.venues {
        table.row(&[
            v.kind.label().to_owned(),
            Table::f(v.partnership_rate),
            Table::f(v.conversation_rate),
            Table::f(v.positionality_rate),
            Table::f(v.human_method_rate),
        ]);
    }
    table.row(&[
        "full §5 adoption".to_owned(),
        Table::f(report.full_adoption_rate),
        format!("recall {:.2}", report.detector_recall),
        format!("precision {:.2}", report.detector_precision),
        String::new(),
    ]);
    Ok(table)
}

/// Output of one registry-driven experiment run: the rendered tables and
/// series, plus how many faults the plan injected while it ran.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRun {
    /// Rendered tables/series, as the `experiments` binary prints them.
    pub rendered: String,
    /// Faults injected during the run (0 for fault-free experiments).
    pub faults_injected: u64,
}

/// The seventeen experiments of `EXPERIMENTS.md`, as a first-class registry
/// so the supervised runner (and anything else) can enumerate, parse and
/// execute them uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ExperimentId {
    F1,
    T1,
    F2,
    T2,
    F3,
    F4,
    T3,
    F5,
    T4,
    F6,
    T5,
    F7,
    F8,
    F9,
    T6,
    T7,
    F10,
}

impl ExperimentId {
    /// Every experiment, in `EXPERIMENTS.md` order.
    pub const ALL: [ExperimentId; 17] = [
        ExperimentId::F1,
        ExperimentId::T1,
        ExperimentId::F2,
        ExperimentId::T2,
        ExperimentId::F3,
        ExperimentId::F4,
        ExperimentId::T3,
        ExperimentId::F5,
        ExperimentId::T4,
        ExperimentId::F6,
        ExperimentId::T5,
        ExperimentId::F7,
        ExperimentId::F8,
        ExperimentId::F9,
        ExperimentId::T6,
        ExperimentId::T7,
        ExperimentId::F10,
    ];

    /// Short stable code, as accepted on the CLI (`f1`, `t3`, ...).
    pub fn code(self) -> &'static str {
        match self {
            ExperimentId::F1 => "f1",
            ExperimentId::T1 => "t1",
            ExperimentId::F2 => "f2",
            ExperimentId::T2 => "t2",
            ExperimentId::F3 => "f3",
            ExperimentId::F4 => "f4",
            ExperimentId::T3 => "t3",
            ExperimentId::F5 => "f5",
            ExperimentId::T4 => "t4",
            ExperimentId::F6 => "f6",
            ExperimentId::T5 => "t5",
            ExperimentId::F7 => "f7",
            ExperimentId::F8 => "f8",
            ExperimentId::F9 => "f9",
            ExperimentId::T6 => "t6",
            ExperimentId::T7 => "t7",
            ExperimentId::F10 => "f10",
        }
    }

    /// Human-readable title (the binary's banner line).
    pub fn title(self) -> &'static str {
        match self {
            ExperimentId::F1 => "Lorenz curve of research attention (paper §1)",
            ExperimentId::T1 => "method-regime comparison (paper §2, §5.1)",
            ExperimentId::F2 => "positionality prevalence by venue (paper §4, §6.4)",
            ExperimentId::T2 => "inter-rater reliability vs codebook refinement (paper §5.2)",
            ExperimentId::F3 => "Telmex: mandatory peering vs ASN splitting (paper §3, [38])",
            ExperimentId::F4 => "IXP gravity: Brazil vs Germany (paper §3, [39])",
            ExperimentId::T3 => "community-network sustainability (paper §4, [23])",
            ExperimentId::F5 => "common-pool congestion management (paper §4, [28])",
            ExperimentId::T4 => "participation-ladder audit (paper §2, §5.1)",
            ExperimentId::F6 => "patchwork vs traditional ethnography (paper §3, [17])",
            ExperimentId::T5 => "venue gatekeeping of human-centered work (paper §6.3.2)",
            ExperimentId::F7 => "§5 recommendation uptake audit",
            ExperimentId::F8 => "IXP growth dynamics (paper §3, [39])",
            ExperimentId::F9 => "method adoption around a CFP intervention (paper §6.4)",
            ExperimentId::T6 => "diary studies and technology probes (paper §6.1, [7])",
            ExperimentId::T7 => "cooperative economics by dues policy (paper §4)",
            ExperimentId::F10 => "internet-scale routing on a synthetic internet (paper §3, ROADMAP)",
        }
    }

    /// Subsystem family, the circuit-breaker granularity of the supervised
    /// runner: experiments in a family share their main simulator crate.
    pub fn family(self) -> &'static str {
        match self {
            ExperimentId::F1 | ExperimentId::T1 | ExperimentId::T5 | ExperimentId::F9 => "agenda",
            ExperimentId::F2 | ExperimentId::F7 => "corpus",
            ExperimentId::T2 | ExperimentId::T6 => "qual",
            ExperimentId::F3 | ExperimentId::F4 | ExperimentId::F8 | ExperimentId::F10 => "ixp",
            ExperimentId::T3 | ExperimentId::F5 | ExperimentId::T7 => "community",
            ExperimentId::T4 | ExperimentId::F6 => "practice",
        }
    }

    /// Parse a CLI spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        ExperimentId::ALL
            .into_iter()
            .find(|id| id.code().eq_ignore_ascii_case(s))
    }

    /// Whether this experiment has a fault-injection surface. The others
    /// (closed-form audits and parameter sweeps without a long-running
    /// simulator) run identically under every fault plan.
    pub fn fault_capable(self) -> bool {
        matches!(
            self,
            ExperimentId::F1
                | ExperimentId::T1
                | ExperimentId::T2
                | ExperimentId::F3
                | ExperimentId::F4
                | ExperimentId::T3
                | ExperimentId::F5
        )
    }

    /// Run the experiment with its canonical parameters (the same the
    /// `experiments` binary uses) under `plan`, rendering the output
    /// exactly as the binary prints it.
    pub fn run(self, plan: &FaultPlan) -> Result<ExperimentRun> {
        self.run_instrumented(plan, &Telemetry::disabled())
    }

    /// [`ExperimentId::run`] with telemetry: the whole run sits inside an
    /// `exp.{code}` span, fault injections are journaled through an
    /// [`InstrumentedHook`], and every simulator reports its counters,
    /// histograms, and milestone events into `tel`. The rendered output
    /// and fault count are identical to the plain [`ExperimentId::run`].
    pub fn run_instrumented(self, plan: &FaultPlan, tel: &Telemetry) -> Result<ExperimentRun> {
        self.run_hooked(&mut PlanHook::new(*plan), tel)
    }

    /// [`ExperimentId::run_instrumented`] with the fault source
    /// abstracted: drive the experiment's injection points from any
    /// [`FaultHook`] — a live [`PlanHook`], a replayed recorded schedule,
    /// or [`NoFaults`]. The hook is wrapped in an [`InstrumentedHook`] so
    /// injections are journaled identically whatever their source, and
    /// the reported fault count covers this run only even when the hook
    /// is reused across experiments.
    pub fn run_hooked(self, fault: &mut dyn FaultHook, tel: &Telemetry) -> Result<ExperimentRun> {
        let _span = tel.span(format!("exp.{}", self.code()));
        let before = fault.faults_injected();
        let mut hook = InstrumentedHook::new(fault, tel);
        let mut out = String::new();
        match self {
            ExperimentId::F1 => {
                let r = f1_attention_instrumented(42, &mut hook, tel)?;
                out.push_str(&r.lorenz.render());
                out.push('\n');
                out.push_str(&format!("attention gini = {:.3}\n\n", r.gini));
                out.push_str(&r.by_class.render());
            }
            ExperimentId::T1 => {
                let (_, table) = t1_regimes_instrumented(&[1, 2, 3, 4, 5], &mut hook, tel)?;
                out.push_str(&table.render());
            }
            ExperimentId::F2 => {
                let (table, series) = f2_positionality_instrumented(7, tel)?;
                out.push_str(&table.render());
                for s in series {
                    out.push('\n');
                    out.push_str(&s.render());
                }
            }
            ExperimentId::T2 => {
                let table = t2_irr_instrumented(5, 6, &mut hook, tel)?;
                out.push_str(&table.render());
            }
            ExperimentId::F3 => {
                let (comply, split, table) = f3_telmex_instrumented(11, &mut hook, tel)?;
                out.push_str(&comply.render());
                out.push('\n');
                out.push_str(&split.render());
                out.push('\n');
                out.push_str(&table.render());
            }
            ExperimentId::F4 => {
                let (foreign, local) = f4_gravity_instrumented(11, &mut hook, tel)?;
                out.push_str(&foreign.render());
                out.push('\n');
                out.push_str(&local.render());
            }
            ExperimentId::T3 => {
                let table = t3_sustainability_instrumented(&[1, 2, 3, 4, 5], &mut hook, tel)?;
                out.push_str(&table.render());
            }
            ExperimentId::F5 => {
                let table = f5_congestion_instrumented(1, &mut hook, tel)?;
                out.push_str(&table.render());
            }
            ExperimentId::T4 => {
                out.push_str(&t4_ladder()?.render());
            }
            ExperimentId::F6 => {
                out.push_str(&f6_patchwork()?.render());
            }
            ExperimentId::T5 => {
                let (human, systems, table) = t5_gatekeeping(6)?;
                out.push_str(&human.render());
                out.push('\n');
                out.push_str(&systems.render());
                out.push('\n');
                out.push_str(&table.render());
            }
            ExperimentId::F7 => {
                out.push_str(&f7_audit_instrumented(3, tel)?.render());
            }
            ExperimentId::F8 => {
                let (top, local, table) = f8_growth_instrumented(7, tel)?;
                out.push_str(&top.render());
                out.push('\n');
                out.push_str(&local.render());
                out.push('\n');
                out.push_str(&table.render());
            }
            ExperimentId::F9 => {
                let (series, table) = f9_adoption()?;
                out.push_str(&series.render());
                out.push('\n');
                out.push_str(&table.render());
            }
            ExperimentId::T6 => {
                out.push_str(&t6_diary_instrumented(5, tel)?.render());
            }
            ExperimentId::T7 => {
                out.push_str(&t7_economics(&[1, 2, 3, 4, 5])?.render());
            }
            ExperimentId::F10 => {
                out.push_str(&f10_scale_instrumented(7, tel)?.render());
            }
        }
        Ok(ExperimentRun {
            rendered: out,
            faults_injected: hook.inner().faults_injected() - before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_produces_high_gini() {
        let r = f1_attention(42).unwrap();
        assert!(r.gini > 0.5, "gini = {}", r.gini);
        assert!(r.lorenz.points.len() > 100);
        assert_eq!(r.by_class.rows.len(), 6);
    }

    #[test]
    fn t1_shape_holds() {
        let (rows, table) = t1_regimes(&[1, 2]).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(table.rows.len(), 4);
        let get = |r: MethodRegime| rows.iter().find(|x| x.regime == r).unwrap();
        let dd = get(MethodRegime::DataDriven);
        let par = get(MethodRegime::Par);
        assert!(par.marginalized_coverage > dd.marginalized_coverage);
        assert!(dd.gini > par.gini);
        assert!(dd.publications > par.publications);
    }

    #[test]
    fn f2_gap_between_venue_cultures() {
        let (table, series) = f2_positionality(7).unwrap();
        assert_eq!(series.len(), 2);
        let rate = |label: &str| -> f64 {
            table
                .rows
                .iter()
                .find(|r| r[0] == label)
                .unwrap()[2]
                .parse()
                .unwrap()
        };
        assert!(rate("hci-cscw") > rate("systems-networking") + 0.1);
    }

    #[test]
    fn t2_alpha_climbs() {
        let table = t2_irr(5, 5).unwrap();
        assert_eq!(table.rows.len(), 6);
        let first: f64 = table.rows.first().unwrap()[3].parse().unwrap();
        let last: f64 = table.rows.last().unwrap()[3].parse().unwrap();
        assert!(last > first);
    }

    #[test]
    fn f3_circumvention_gap() {
        let (comply, split, table) = f3_telmex(5).unwrap();
        assert_eq!(table.rows.len(), 5);
        // At zero enforcement, compliance >> splitting.
        assert!(comply.points[0].1 > split.points[0].1 + 0.3);
        // At full enforcement the gap closes.
        let last = split.points.last().unwrap().1;
        assert!(last > 0.9, "full enforcement share = {last}");
    }

    #[test]
    fn f4_gravity_slopes() {
        let (foreign, local) = f4_gravity(5).unwrap();
        assert!(foreign.points.first().unwrap().1 > foreign.points.last().unwrap().1);
        assert!(local.points.last().unwrap().1 > local.points.first().unwrap().1);
    }

    #[test]
    fn t3_and_f5_render() {
        let t3 = t3_sustainability(&[1, 2]).unwrap();
        assert_eq!(t3.rows.len(), 3);
        let f5 = f5_congestion(1).unwrap();
        assert_eq!(f5.rows.len(), 3);
        assert!(f5.render().contains("community-tokens"));
    }

    #[test]
    fn t4_scores_increase() {
        let t = t4_ladder().unwrap();
        assert_eq!(t.rows.len(), 6);
        let scores: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(scores.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn f6_memos_rescue_patchwork() {
        let t = f6_patchwork().unwrap();
        let insights = |label: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == label).unwrap()[3].parse().unwrap()
        };
        assert!(insights("patchwork x6 + memos") > insights("patchwork x6"));
        assert!(insights("traditional") > insights("rapid (10 days)"));
    }

    #[test]
    fn t5_broadening_helps() {
        let (human, _systems, table) = t5_gatekeeping(5).unwrap();
        assert_eq!(table.rows.len(), 5);
        assert!(human.points.last().unwrap().1 > human.points.first().unwrap().1);
    }

    #[test]
    fn f7_audit_table_renders() {
        let t = f7_audit(3).unwrap();
        assert_eq!(t.rows.len(), 7);
        assert!(t.render().contains("full §5 adoption"));
    }

    #[test]
    fn f8_affinity_reduces_concentration() {
        let (top, local, table) = f8_growth(4).unwrap();
        assert_eq!(table.rows.len(), 4);
        assert!(top.points[0].1 > top.points.last().unwrap().1);
        assert!(local.points.last().unwrap().1 > local.points[0].1);
    }

    #[test]
    fn f9_share_recovers_after_intervention() {
        let (series, table) = f9_adoption().unwrap();
        assert_eq!(table.rows.len(), 30);
        let at15 = series.points[15].1;
        let last = series.points.last().unwrap().1;
        assert!(last > at15);
    }

    #[test]
    fn t7_policies_differ() {
        let t = t7_economics(&[1, 2, 3]).unwrap();
        assert_eq!(t.rows.len(), 3);
        let get = |label: &str, col: usize| -> f64 {
            t.rows.iter().find(|r| r[0] == label).unwrap()[col].parse().unwrap()
        };
        // Income scaling keeps more members than flat dues.
        assert!(get("income-scaled", 3) >= get("flat", 3));
        // Donations carry the highest insolvency risk.
        assert!(get("donation", 1) >= get("income-scaled", 1));
    }

    #[test]
    fn registry_codes_parse_and_families_cover() {
        assert_eq!(ExperimentId::ALL.len(), 17);
        for id in ExperimentId::ALL {
            assert_eq!(ExperimentId::parse(id.code()), Some(id));
            assert_eq!(ExperimentId::parse(&id.code().to_uppercase()), Some(id));
            assert!(!id.family().is_empty());
        }
        assert_eq!(ExperimentId::parse("zz"), None);
    }

    #[test]
    fn registry_run_matches_plain_functions_without_faults() {
        let run = ExperimentId::F5.run(&FaultPlan::none()).unwrap();
        assert_eq!(run.faults_injected, 0);
        assert_eq!(run.rendered, f5_congestion(1).unwrap().render());
    }

    #[test]
    fn registry_chaos_run_reports_faults() {
        use humnet_resilience::FaultProfile;
        let plan = FaultPlan::new(FaultProfile::Chaos, 9);
        let run = ExperimentId::T3.run(&plan).unwrap();
        assert!(run.faults_injected > 0);
        // Same plan, same output: the registry is deterministic.
        let again = ExperimentId::T3.run(&plan).unwrap();
        assert_eq!(run, again);
    }

    #[test]
    fn upstream_errors_preserve_the_source_chain() {
        let err = t1_regimes(&[]).unwrap_err();
        assert_eq!(err, crate::CoreError::EmptyInput);
        // A domain-crate failure surfaces with its source reachable.
        let err = f3_telmex(1).unwrap_err();
        assert!(matches!(err, crate::CoreError::InvalidParameter(_)));
    }

    #[test]
    fn f10_serves_sampled_demands_and_is_deterministic() {
        let a = f10_scale(7).unwrap();
        let b = f10_scale(7).unwrap();
        assert_eq!(a, b);
        let get = |label: &str| -> String {
            a.rows.iter().find(|r| r[0] == label).unwrap()[1].clone()
        };
        // The synthetic internet is fully reachable: every demand is served.
        assert_eq!(get("flows served"), "512");
        assert_eq!(get("flows unserved"), "0");
        let peer_share: f64 = get("peer-hop volume share").parse().unwrap();
        assert!(peer_share > 0.0, "some traffic should be exchanged settlement-free");
        let hops: f64 = get("mean AS-path hops").parse().unwrap();
        assert!((1.0..10.0).contains(&hops), "mean hops = {hops}");
    }

    #[test]
    fn t6_probes_help() {
        let t = t6_diary(5).unwrap();
        assert_eq!(t.rows.len(), 2);
        let final_week = |label: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == label).unwrap()[2].parse().unwrap()
        };
        assert!(final_week("diary + probes") > final_week("plain diary"));
    }
}
