//! Field studies and the insight-saturation model (experiment **F6**).
//!
//! §3 of the paper, citing the patchwork-ethnography manifesto [17] and
//! Marcus's "How short can fieldwork be?" [36], claims that fragmented
//! field engagement can preserve depth — there is "no reason for concluding
//! that the time it takes must in every case be spent in its bulk in a
//! physical fieldsite".
//!
//! **Substitution note (DESIGN.md §1).** We cannot run fieldwork, so we
//! model the one mechanism the debate turns on: *depth of engagement*.
//! A site holds a latent pool of insights. Each field day harvests a
//! fraction of the remaining pool proportional to the ethnographer's
//! current depth. Depth builds over consecutive days and collapses between
//! visits — unless reflexive memo practice (patchwork's core discipline)
//! preserves it. The model then lets experiment **F6** ask: at a fixed
//! budget of field days, how much insight does each schedule yield?

use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// How field days are laid out in calendar time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schedule {
    /// One continuous block (classical long-form fieldwork).
    Traditional,
    /// `fragments` equal visits separated by `gap_days` away.
    Patchwork {
        /// Number of visits.
        fragments: usize,
        /// Days away between visits.
        gap_days: u32,
    },
    /// Industry-style rapid ethnography: one short, intense visit using
    /// only part of the budget (the rest of the budget is simply not spent
    /// in the field).
    Rapid {
        /// Days actually spent on site.
        days_on_site: u32,
    },
}

/// The reflexive documentation practice maintained between visits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MemoPractice {
    /// No systematic memos: depth collapses between visits.
    None,
    /// Patchwork-style continuous reflexive writing: a fraction of depth
    /// (the value, in `[0, 1]`) survives each gap.
    Reflexive(f64),
}

/// Configuration of a field study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EthnographyConfig {
    /// Total budget of field days.
    pub budget_days: u32,
    /// The visit schedule.
    pub schedule: Schedule,
    /// Memo practice between visits.
    pub memos: MemoPractice,
    /// Size of the site's latent insight pool (arbitrary units).
    pub insight_pool: f64,
    /// Fraction of remaining pool harvested per day at full depth.
    pub harvest_rate: f64,
    /// Depth on the first day of a visit with no carried depth.
    pub entry_depth: f64,
    /// Depth gained per consecutive field day.
    pub depth_gain: f64,
}

impl Default for EthnographyConfig {
    fn default() -> Self {
        EthnographyConfig {
            budget_days: 60,
            schedule: Schedule::Traditional,
            memos: MemoPractice::None,
            insight_pool: 100.0,
            harvest_rate: 0.02,
            entry_depth: 0.2,
            depth_gain: 0.1,
        }
    }
}

impl EthnographyConfig {
    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        if self.budget_days == 0 {
            return Err(CoreError::InvalidParameter("budget_days must be >= 1"));
        }
        if self.insight_pool <= 0.0 {
            return Err(CoreError::InvalidParameter("insight_pool must be positive"));
        }
        if !(0.0..=1.0).contains(&self.harvest_rate)
            || !(0.0..=1.0).contains(&self.entry_depth)
            || !(0.0..=1.0).contains(&self.depth_gain)
        {
            return Err(CoreError::InvalidParameter(
                "rates and depths must be in [0,1]",
            ));
        }
        match &self.schedule {
            Schedule::Patchwork { fragments, .. } => {
                if *fragments == 0 {
                    return Err(CoreError::InvalidParameter("fragments must be >= 1"));
                }
                if *fragments as u32 > self.budget_days {
                    return Err(CoreError::InvalidParameter("more fragments than budget days"));
                }
            }
            Schedule::Rapid { days_on_site } => {
                if *days_on_site == 0 || days_on_site > &self.budget_days {
                    return Err(CoreError::InvalidParameter(
                        "days_on_site must be in [1, budget]",
                    ));
                }
            }
            Schedule::Traditional => {}
        }
        if let MemoPractice::Reflexive(keep) = self.memos {
            if !(0.0..=1.0).contains(&keep) {
                return Err(CoreError::InvalidParameter("memo retention must be in [0,1]"));
            }
        }
        Ok(())
    }

    /// Expand the schedule into visit lengths (days on site per visit).
    fn visits(&self) -> Vec<u32> {
        match &self.schedule {
            Schedule::Traditional => vec![self.budget_days],
            Schedule::Patchwork { fragments, .. } => {
                let base = self.budget_days / *fragments as u32;
                let extra = self.budget_days % *fragments as u32;
                (0..*fragments as u32)
                    .map(|i| base + u32::from(i < extra))
                    .filter(|&len| len > 0)
                    .collect()
            }
            Schedule::Rapid { days_on_site } => vec![*days_on_site],
        }
    }
}

/// Outcome of a field study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyOutcome {
    /// Total insight harvested (≤ pool size).
    pub insights: f64,
    /// Fraction of the pool harvested.
    pub saturation: f64,
    /// Field days actually spent on site.
    pub days_on_site: u32,
    /// Mean engagement depth over on-site days.
    pub mean_depth: f64,
}

/// A deterministic field-study simulation.
#[derive(Debug, Clone)]
pub struct FieldStudy {
    config: EthnographyConfig,
}

impl FieldStudy {
    /// Create a study.
    pub fn new(config: EthnographyConfig) -> Result<Self> {
        config.validate()?;
        Ok(FieldStudy { config })
    }

    /// Run the study.
    pub fn run(&self) -> StudyOutcome {
        let cfg = &self.config;
        let mut insights = 0.0;
        let mut depth: f64 = 0.0;
        let mut days = 0u32;
        let mut depth_sum = 0.0;
        for (v, &len) in cfg.visits().iter().enumerate() {
            // Re-entry: depth restored from memos or reset to entry depth.
            if v == 0 {
                depth = cfg.entry_depth;
            } else {
                depth = match cfg.memos {
                    MemoPractice::None => cfg.entry_depth,
                    MemoPractice::Reflexive(keep) => {
                        (depth * keep).max(cfg.entry_depth)
                    }
                };
            }
            for _ in 0..len {
                let harvest = cfg.harvest_rate * depth * (cfg.insight_pool - insights);
                insights += harvest;
                depth_sum += depth;
                days += 1;
                depth = (depth + cfg.depth_gain).min(1.0);
            }
        }
        StudyOutcome {
            insights,
            saturation: insights / cfg.insight_pool,
            days_on_site: days,
            mean_depth: if days > 0 { depth_sum / days as f64 } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(schedule: Schedule, memos: MemoPractice) -> StudyOutcome {
        let mut cfg = EthnographyConfig::default();
        cfg.schedule = schedule;
        cfg.memos = memos;
        FieldStudy::new(cfg).unwrap().run()
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = EthnographyConfig::default();
        cfg.budget_days = 0;
        assert!(FieldStudy::new(cfg).is_err());
        let mut cfg = EthnographyConfig::default();
        cfg.schedule = Schedule::Patchwork {
            fragments: 0,
            gap_days: 10,
        };
        assert!(FieldStudy::new(cfg).is_err());
        let mut cfg = EthnographyConfig::default();
        cfg.schedule = Schedule::Rapid { days_on_site: 90 };
        assert!(FieldStudy::new(cfg).is_err());
        let mut cfg = EthnographyConfig::default();
        cfg.memos = MemoPractice::Reflexive(1.5);
        assert!(FieldStudy::new(cfg).is_err());
        let mut cfg = EthnographyConfig::default();
        cfg.harvest_rate = 2.0;
        assert!(FieldStudy::new(cfg).is_err());
    }

    #[test]
    fn traditional_uses_full_budget() {
        let out = run(Schedule::Traditional, MemoPractice::None);
        assert_eq!(out.days_on_site, 60);
        assert!(out.saturation > 0.5, "60 deep days should saturate well");
        assert!(out.saturation < 1.0);
    }

    #[test]
    fn insights_bounded_by_pool() {
        let mut cfg = EthnographyConfig::default();
        cfg.budget_days = 3650;
        cfg.schedule = Schedule::Traditional;
        let out = FieldStudy::new(cfg).unwrap().run();
        assert!(out.insights <= 100.0);
        assert!(out.saturation <= 1.0);
    }

    #[test]
    fn patchwork_without_memos_loses_depth() {
        let trad = run(Schedule::Traditional, MemoPractice::None);
        let patch = run(
            Schedule::Patchwork {
                fragments: 6,
                gap_days: 30,
            },
            MemoPractice::None,
        );
        assert!(patch.days_on_site == trad.days_on_site);
        assert!(
            trad.insights > patch.insights * 1.1,
            "traditional {} should clearly beat memo-less patchwork {}",
            trad.insights,
            patch.insights
        );
        assert!(trad.mean_depth > patch.mean_depth);
    }

    #[test]
    fn reflexive_memos_rescue_patchwork() {
        // The §3 claim: with reflexive practice, fragmented time preserves
        // depth — patchwork comes within 10% of traditional.
        let trad = run(Schedule::Traditional, MemoPractice::None);
        let patch = run(
            Schedule::Patchwork {
                fragments: 6,
                gap_days: 30,
            },
            MemoPractice::Reflexive(0.9),
        );
        assert!(
            patch.insights > trad.insights * 0.9,
            "patchwork-with-memos {} should approach traditional {}",
            patch.insights,
            trad.insights
        );
    }

    #[test]
    fn memo_quality_is_monotone() {
        let mut last = -1.0;
        for keep in [0.0, 0.3, 0.6, 0.9] {
            let out = run(
                Schedule::Patchwork {
                    fragments: 6,
                    gap_days: 30,
                },
                MemoPractice::Reflexive(keep),
            );
            assert!(out.insights >= last, "insights must rise with memo quality");
            last = out.insights;
        }
    }

    #[test]
    fn rapid_is_cheap_and_shallow() {
        let rapid = run(Schedule::Rapid { days_on_site: 10 }, MemoPractice::None);
        let trad = run(Schedule::Traditional, MemoPractice::None);
        assert_eq!(rapid.days_on_site, 10);
        assert!(rapid.insights < trad.insights);
        assert!(rapid.insights > 0.0);
    }

    #[test]
    fn patchwork_fragment_lengths_sum_to_budget() {
        let mut cfg = EthnographyConfig::default();
        cfg.budget_days = 61;
        cfg.schedule = Schedule::Patchwork {
            fragments: 7,
            gap_days: 10,
        };
        let study = FieldStudy::new(cfg).unwrap();
        let out = study.run();
        assert_eq!(out.days_on_site, 61);
    }

    #[test]
    fn deterministic() {
        let a = run(Schedule::Traditional, MemoPractice::None);
        let b = run(Schedule::Traditional, MemoPractice::None);
        assert_eq!(a, b);
    }
}
