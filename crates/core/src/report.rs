//! Plain-text tables and series for regenerating the experiment artifacts.
//!
//! Every table and figure in `EXPERIMENTS.md` is produced through these
//! types by the `experiments` binary and the benches, so the rendering is
//! consistent and snapshot-testable.

use serde::{Deserialize, Serialize};

/// A rectangular text table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row must match the header length; enforced at
    /// render time by padding/truncation-free assertion).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Panics in debug builds if the arity mismatches —
    /// tables are built by trusted experiment code.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: format a float with 3 decimals.
    pub fn f(x: f64) -> String {
        format!("{x:.3}")
    }

    /// Render as an aligned plain-text table via the shared
    /// [`TextTable`](humnet_telemetry::TextTable) renderer, so experiment
    /// tables, run reports, and metrics snapshots share one format.
    pub fn render(&self) -> String {
        let mut t = humnet_telemetry::TextTable::new(&self.headers).with_heading(&self.title);
        for row in &self.rows {
            t.row(row.clone());
        }
        t.render()
    }
}

/// A named (x, y) series, rendered as a two-column table plus an ASCII
/// sparkline — the text stand-in for a paper figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series title.
    pub title: String,
    /// Axis labels `(x, y)`.
    pub axes: (String, String),
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create a series.
    pub fn new(title: impl Into<String>, x: &str, y: &str) -> Self {
        Series {
            title: title.into(),
            axes: (x.to_owned(), y.to_owned()),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) -> &mut Self {
        self.points.push((x, y));
        self
    }

    /// ASCII sparkline over the y values (8 levels).
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.points.is_empty() {
            return String::new();
        }
        let ys: Vec<f64> = self.points.iter().map(|&(_, y)| y).collect();
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        ys.iter()
            .map(|&y| {
                if hi > lo {
                    let t = (y - lo) / (hi - lo);
                    LEVELS[((t * 7.0).round() as usize).min(7)]
                } else {
                    LEVELS[3]
                }
            })
            .collect()
    }

    /// Render as title, sparkline, and aligned point table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        out.push_str(&format!("    {}\n\n", self.sparkline()));
        out.push_str(&format!("| {} | {} |\n", self.axes.0, self.axes.1));
        out.push_str("|---|---|\n");
        for &(x, y) in &self.points {
            out.push_str(&format!("| {x:.3} | {y:.4} |\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["short".into(), Table::f(1.0)]);
        t.row(&["much-longer-name".into(), Table::f(0.25)]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| name             | value |"));
        assert!(s.contains("| much-longer-name | 0.250 |"));
        // All data lines are the same width.
        let widths: Vec<usize> = s
            .lines()
            .filter(|l| l.starts_with('|'))
            .map(str::len)
            .collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    fn float_format() {
        assert_eq!(Table::f(0.123456), "0.123");
        assert_eq!(Table::f(2.0), "2.000");
    }

    #[test]
    fn series_sparkline_shape() {
        let mut s = Series::new("ramp", "x", "y");
        for i in 0..8 {
            s.push(i as f64, i as f64);
        }
        let spark = s.sparkline();
        assert_eq!(spark.chars().count(), 8);
        assert!(spark.starts_with('▁'));
        assert!(spark.ends_with('█'));
    }

    #[test]
    fn series_constant_and_empty() {
        let mut s = Series::new("flat", "x", "y");
        s.push(0.0, 5.0).push(1.0, 5.0);
        assert_eq!(s.sparkline().chars().count(), 2);
        let empty = Series::new("none", "x", "y");
        assert_eq!(empty.sparkline(), "");
    }

    #[test]
    fn series_render_contains_points() {
        let mut s = Series::new("demo", "enforcement", "share");
        s.push(0.5, 0.75);
        let r = s.render();
        assert!(r.contains("| 0.500 | 0.7500 |"));
        assert!(r.contains("| enforcement | share |"));
    }
}
