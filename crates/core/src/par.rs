//! Participatory action research projects and the participation ladder.
//!
//! §2 of the paper asks for "full and active participation of individuals
//! or communities at all levels, from scoping initial research questions
//! through to the publication of research results", and §5.1 asks authors
//! to *document* those engagements. This module makes both checkable:
//! engagements are typed records attached to research stages, each stage is
//! scored on an Arnstein-style ladder, and the audit verifies the §5.1
//! checklist mechanically (experiment **T4**).

use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// Stages of a research project (§5.1's "(1) ideate … (2) explore …
/// (3) evaluate", plus dissemination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResearchStage {
    /// Problem formation / ideation.
    ProblemFormation,
    /// Designing and exploring solutions.
    SolutionDesign,
    /// Evaluating artifacts in real environments.
    Evaluation,
    /// Publishing and returning results to the community.
    Dissemination,
}

impl ResearchStage {
    /// All stages in order.
    pub const ALL: [ResearchStage; 4] = [
        ResearchStage::ProblemFormation,
        ResearchStage::SolutionDesign,
        ResearchStage::Evaluation,
        ResearchStage::Dissemination,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            ResearchStage::ProblemFormation => "problem-formation",
            ResearchStage::SolutionDesign => "solution-design",
            ResearchStage::Evaluation => "evaluation",
            ResearchStage::Dissemination => "dissemination",
        }
    }
}

/// The depth of partner participation in an engagement, mapped onto the
/// rungs of Arnstein's ladder of citizen participation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EngagementKind {
    /// Partners were told what was happening (rung 3, "informing").
    Informed,
    /// Partners were asked for input (rung 4, "consultation").
    Consulted,
    /// Partners co-designed the work (rung 6, "partnership").
    Collaborated,
    /// Partners held decision power (rung 8, "citizen control").
    CommunityLed,
}

impl EngagementKind {
    /// Ladder rung (out of 8).
    pub fn rung(&self) -> u8 {
        match self {
            EngagementKind::Informed => 3,
            EngagementKind::Consulted => 4,
            EngagementKind::Collaborated => 6,
            EngagementKind::CommunityLed => 8,
        }
    }
}

/// A practitioner or community partner.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partner {
    /// Name or pseudonym.
    pub name: String,
    /// Who they are (e.g. "community network operator", "IXP staff").
    pub role: String,
}

/// One documented engagement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngagementRecord {
    /// Stage the engagement belongs to.
    pub stage: ResearchStage,
    /// Index into the project's partner list.
    pub partner: usize,
    /// Depth of participation.
    pub kind: EngagementKind,
    /// What happened (the §5.2 "informative conversation" record).
    pub activity: String,
    /// Whether the engagement is documented in the research artifact.
    pub documented: bool,
}

/// A participatory project: partners plus engagement history.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParProject {
    /// Project name.
    pub name: String,
    /// Partners.
    pub partners: Vec<Partner>,
    /// Engagement records.
    pub engagements: Vec<EngagementRecord>,
}

impl ParProject {
    /// Create an empty project.
    pub fn new(name: impl Into<String>) -> Self {
        ParProject {
            name: name.into(),
            partners: Vec::new(),
            engagements: Vec::new(),
        }
    }

    /// Register a partner; returns their index.
    pub fn add_partner(&mut self, name: &str, role: &str) -> usize {
        self.partners.push(Partner {
            name: name.to_owned(),
            role: role.to_owned(),
        });
        self.partners.len() - 1
    }

    /// Record an engagement.
    pub fn engage(
        &mut self,
        stage: ResearchStage,
        partner: usize,
        kind: EngagementKind,
        activity: &str,
        documented: bool,
    ) -> Result<()> {
        if partner >= self.partners.len() {
            return Err(CoreError::NotFound("partner"));
        }
        if activity.trim().is_empty() {
            return Err(CoreError::InvalidParameter("activity must be described"));
        }
        self.engagements.push(EngagementRecord {
            stage,
            partner,
            kind,
            activity: activity.to_owned(),
            documented,
        });
        Ok(())
    }

    /// Highest ladder rung achieved at a stage (None = no engagement).
    pub fn stage_rung(&self, stage: ResearchStage) -> Option<u8> {
        self.engagements
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| e.kind.rung())
            .max()
    }

    /// Participation score in `[0, 1]`: mean over all four stages of
    /// `rung/8`, counting unengaged stages as zero. A project that is
    /// community-led at every stage scores 1.
    pub fn participation_score(&self) -> f64 {
        let total: f64 = ResearchStage::ALL
            .iter()
            .map(|&s| self.stage_rung(s).unwrap_or(0) as f64 / 8.0)
            .sum();
        total / ResearchStage::ALL.len() as f64
    }

    /// The §5.1 audit: partners must be engaged (at consultation depth or
    /// better) in problem formation, solution design, *and* evaluation, and
    /// every engagement must be documented. Returns the list of violations
    /// (empty = compliant).
    pub fn audit_5_1(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if self.partners.is_empty() {
            violations.push("no partners registered".to_owned());
        }
        for stage in [
            ResearchStage::ProblemFormation,
            ResearchStage::SolutionDesign,
            ResearchStage::Evaluation,
        ] {
            match self.stage_rung(stage) {
                None => violations.push(format!("no engagement at stage {}", stage.label())),
                Some(r) if r < EngagementKind::Consulted.rung() => violations.push(format!(
                    "stage {} only reaches rung {r} (informing); consultation or better required",
                    stage.label()
                )),
                Some(_) => {}
            }
        }
        for (i, e) in self.engagements.iter().enumerate() {
            if !e.documented {
                violations.push(format!(
                    "engagement #{i} at {} is not documented in the artifact",
                    e.stage.label()
                ));
            }
        }
        violations
    }

    /// True when the §5.1 audit passes.
    pub fn is_5_1_compliant(&self) -> bool {
        self.audit_5_1().is_empty()
    }

    /// Build one of six project archetypes used by experiment **T4** —
    /// from extractive fly-in/fly-out research to a fully community-led
    /// project.
    pub fn archetype(which: usize) -> ParProject {
        let mut p = ParProject::new(match which {
            0 => "extractive-measurement",
            1 => "consult-at-the-end",
            2 => "advisory-board",
            3 => "co-design",
            4 => "operational-partnership",
            _ => "community-led",
        });
        let partner = p.add_partner("community-org", "local operator collective");
        use EngagementKind::*;
        use ResearchStage::*;
        let plan: Vec<(ResearchStage, EngagementKind, bool)> = match which {
            // Dataset-first research: community never in the room.
            0 => vec![(Dissemination, Informed, false)],
            // Solution built, then community "validated" it.
            1 => vec![(Evaluation, Consulted, true), (Dissemination, Informed, true)],
            // Advisory board consulted throughout, decisions held by lab.
            2 => ResearchStage::ALL
                .iter()
                .map(|&s| (s, Consulted, true))
                .collect(),
            // Co-design in formation and design.
            3 => vec![
                (ProblemFormation, Collaborated, true),
                (SolutionDesign, Collaborated, true),
                (Evaluation, Consulted, true),
                (Dissemination, Consulted, true),
            ],
            // Partnership in everything.
            4 => ResearchStage::ALL
                .iter()
                .map(|&s| (s, Collaborated, true))
                .collect(),
            // Community holds the pen.
            _ => ResearchStage::ALL
                .iter()
                .map(|&s| (s, CommunityLed, true))
                .collect(),
        };
        for (stage, kind, documented) in plan {
            p.engage(stage, partner, kind, "recorded engagement", documented)
                .expect("partner exists");
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn project() -> ParProject {
        let mut p = ParProject::new("SCN-style deployment");
        let org = p.add_partner("tiny-house village", "host community");
        let ixp = p.add_partner("local ISP", "backhaul partner");
        p.engage(
            ResearchStage::ProblemFormation,
            org,
            EngagementKind::Collaborated,
            "community meetings to scope connectivity needs",
            true,
        )
        .unwrap();
        p.engage(
            ResearchStage::SolutionDesign,
            org,
            EngagementKind::CommunityLed,
            "residents chose node placement",
            true,
        )
        .unwrap();
        p.engage(
            ResearchStage::Evaluation,
            ixp,
            EngagementKind::Consulted,
            "operator feedback on performance",
            true,
        )
        .unwrap();
        p
    }

    #[test]
    fn engagement_validation() {
        let mut p = ParProject::new("x");
        assert!(p
            .engage(ResearchStage::Evaluation, 0, EngagementKind::Informed, "a", true)
            .is_err());
        let id = p.add_partner("p", "r");
        assert!(p
            .engage(ResearchStage::Evaluation, id, EngagementKind::Informed, "  ", true)
            .is_err());
        assert!(p
            .engage(ResearchStage::Evaluation, id, EngagementKind::Informed, "ok", true)
            .is_ok());
    }

    #[test]
    fn stage_rung_takes_max() {
        let p = project();
        assert_eq!(p.stage_rung(ResearchStage::SolutionDesign), Some(8));
        assert_eq!(p.stage_rung(ResearchStage::Evaluation), Some(4));
        assert_eq!(p.stage_rung(ResearchStage::Dissemination), None);
    }

    #[test]
    fn participation_score_formula() {
        let p = project();
        // (6 + 8 + 4 + 0) / 8 / 4
        let expected = (6.0 + 8.0 + 4.0) / 8.0 / 4.0;
        assert!((p.participation_score() - expected).abs() < 1e-12);
    }

    #[test]
    fn audit_flags_missing_stage_and_undocumented() {
        let mut p = project();
        // Dissemination missing is fine for 5.1 (only first three stages
        // are mandatory), so this project is compliant.
        assert!(p.is_5_1_compliant());
        // Add an undocumented engagement -> violation.
        p.engage(
            ResearchStage::Evaluation,
            0,
            EngagementKind::Consulted,
            "hallway chat",
            false,
        )
        .unwrap();
        let v = p.audit_5_1();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("not documented"));
    }

    #[test]
    fn audit_requires_consultation_depth() {
        let mut p = ParProject::new("informing-only");
        let id = p.add_partner("a", "b");
        for stage in [
            ResearchStage::ProblemFormation,
            ResearchStage::SolutionDesign,
            ResearchStage::Evaluation,
        ] {
            p.engage(stage, id, EngagementKind::Informed, "newsletter", true)
                .unwrap();
        }
        let v = p.audit_5_1();
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|s| s.contains("rung 3")));
    }

    #[test]
    fn audit_flags_empty_project() {
        let p = ParProject::new("empty");
        let v = p.audit_5_1();
        assert!(v.iter().any(|s| s.contains("no partners")));
        assert!(v.iter().any(|s| s.contains("no engagement")));
    }

    #[test]
    fn archetypes_order_on_the_ladder() {
        let scores: Vec<f64> = (0..6)
            .map(|i| ParProject::archetype(i).participation_score())
            .collect();
        for w in scores.windows(2) {
            assert!(w[1] > w[0], "scores must strictly increase: {scores:?}");
        }
        assert!(scores[0] < 0.2);
        assert_eq!(scores[5], 1.0);
    }

    #[test]
    fn archetype_compliance_split() {
        // Extractive and consult-at-the-end fail §5.1; advisory board on up
        // pass.
        assert!(!ParProject::archetype(0).is_5_1_compliant());
        assert!(!ParProject::archetype(1).is_5_1_compliant());
        for i in 2..6 {
            assert!(
                ParProject::archetype(i).is_5_1_compliant(),
                "archetype {i} should comply"
            );
        }
    }

    #[test]
    fn rungs_are_ordered() {
        assert!(EngagementKind::CommunityLed.rung() > EngagementKind::Collaborated.rung());
        assert!(EngagementKind::Collaborated.rung() > EngagementKind::Consulted.rung());
        assert!(EngagementKind::Consulted.rung() > EngagementKind::Informed.rung());
    }
}
