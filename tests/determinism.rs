//! Determinism contract: every simulator in the toolkit is bit-for-bit
//! reproducible from its seed, and sensitive to seed changes. This is what
//! makes `EXPERIMENTS.md` reproducible on any machine.

use humnet::agenda::{AgendaConfig, AgendaSim};
use humnet::community::{
    AllocationPolicy, CongestionConfig, CongestionSim, SustainabilityConfig, SustainabilitySim,
};
use humnet::corpus::CorpusConfig;
use humnet::ixp::{MexicoConfig, MexicoScenario, TwoRegionConfig, TwoRegionScenario};
use humnet::qual::{SimulatedStudy, StudyConfig};
use humnet::stats::Rng;

#[test]
fn rng_streams_are_stable_across_calls() {
    let take = |seed: u64| -> Vec<u64> {
        let mut rng = Rng::new(seed);
        (0..32).map(|_| rng.next_u64()).collect()
    };
    assert_eq!(take(1), take(1));
    assert_ne!(take(1), take(2));
}

#[test]
fn corpus_generation_reproducible() {
    let mut cfg = CorpusConfig::default();
    cfg.years = 3;
    for v in cfg.venues.iter_mut() {
        v.papers_per_year = 6;
    }
    let a = cfg.generate(77).unwrap();
    let b = cfg.generate(77).unwrap();
    assert_eq!(a, b);
    assert_ne!(a, cfg.generate(78).unwrap());
}

#[test]
fn agenda_reproducible() {
    let run = |seed| {
        let mut cfg = AgendaConfig::default();
        cfg.rounds = 20;
        cfg.seed = seed;
        let mut sim = AgendaSim::new(cfg).unwrap();
        sim.run().unwrap();
        sim.history().to_vec()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn ixp_scenarios_reproducible() {
    let mx = MexicoConfig::default();
    assert_eq!(
        MexicoScenario::run(&mx).unwrap().flows,
        MexicoScenario::run(&mx).unwrap().flows
    );
    let tr = TwoRegionConfig::default();
    let a = TwoRegionScenario::run(&tr).unwrap();
    let b = TwoRegionScenario::run(&tr).unwrap();
    assert_eq!(a.flows, b.flows);
    assert_eq!(
        a.foreign_exchange_share().unwrap(),
        b.foreign_exchange_share().unwrap()
    );
}

#[test]
fn community_sims_reproducible() {
    let mut cfg = SustainabilityConfig::default();
    cfg.days = 100;
    cfg.seed = 3;
    let a = SustainabilitySim::new(cfg.clone()).unwrap().run().unwrap();
    let b = SustainabilitySim::new(cfg).unwrap().run().unwrap();
    assert_eq!(a, b);

    let ccfg = CongestionConfig::default();
    let s1 = CongestionSim::new(ccfg.clone()).unwrap();
    let s2 = CongestionSim::new(ccfg).unwrap();
    for p in AllocationPolicy::ALL {
        assert_eq!(s1.run(p), s2.run(p));
    }
}

#[test]
fn qual_study_reproducible() {
    let run = |seed| {
        let mut s = SimulatedStudy::new(StudyConfig::default(), seed).unwrap();
        s.reliability_trajectory(3).unwrap()
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}

#[test]
fn experiment_suite_reproducible() {
    use humnet::core::experiments as exp;
    let a = exp::f1_attention(42).unwrap();
    let b = exp::f1_attention(42).unwrap();
    assert_eq!(a.gini, b.gini);
    assert_eq!(a.lorenz, b.lorenz);
    let (t1a, _) = exp::t1_regimes(&[1]).unwrap();
    let (t1b, _) = exp::t1_regimes(&[1]).unwrap();
    for (x, y) in t1a.iter().zip(&t1b) {
        assert_eq!(x.marginalized_coverage, y.marginalized_coverage);
        assert_eq!(x.publications, y.publications);
    }
}

#[test]
fn routing_worker_count_never_changes_results() {
    use humnet::core::experiments as exp;
    use humnet::ixp::RoutingTable;
    use humnet::resilience::NoFaults;
    use humnet::telemetry::Telemetry;

    // The SoA engine at 1/2/8 workers produces byte-identical tables on the
    // topologies the F3 and F4 experiments route over.
    let mx = MexicoScenario::run(&MexicoConfig::default()).unwrap();
    let tr = TwoRegionScenario::run(&TwoRegionConfig::default()).unwrap();
    for t in [&mx.topology, &tr.topology] {
        let serial = RoutingTable::compute_parallel(t, 1).unwrap();
        for workers in [2usize, 8] {
            let par = RoutingTable::compute_parallel(t, workers).unwrap();
            assert_eq!(par, serial, "workers = {workers}");
            assert_eq!(par.digest(), serial.digest());
        }
    }

    // ... so the F3/F4 experiment journals are unchanged: the scenarios
    // route through the same engine, and repeated instrumented runs emit
    // identical canonical event streams (timings excluded).
    let journal = |run: &dyn Fn(&Telemetry)| -> Vec<String> {
        let tel = Telemetry::new();
        run(&tel);
        tel.snapshot().canonical_events()
    };
    let f3 = |tel: &Telemetry| {
        exp::f3_telmex_instrumented(4, &mut NoFaults, tel).unwrap();
    };
    let f4 = |tel: &Telemetry| {
        exp::f4_gravity_instrumented(4, &mut NoFaults, tel).unwrap();
    };
    assert_eq!(journal(&f3), journal(&f3));
    assert_eq!(journal(&f4), journal(&f4));
    assert!(!journal(&f3).is_empty(), "F3 must journal events");
}

#[test]
fn supervised_chaos_run_reproducible() {
    use humnet::core::experiments::ExperimentId;
    use humnet::resilience::{ExperimentSpec, FaultProfile, JobError, JobOutput, Supervisor};
    use std::time::Duration;

    let specs = || -> Vec<ExperimentSpec> {
        // A cross-family subset keeps the double run fast; the binary's
        // acceptance path covers all seventeen.
        [ExperimentId::F1, ExperimentId::T2, ExperimentId::F4, ExperimentId::F5]
            .into_iter()
            .map(|id| {
                ExperimentSpec::new(id.code(), id.title(), id.family(), move |plan, tel| {
                    id.run_instrumented(plan, tel)
                        .map(|r| JobOutput {
                            rendered: r.rendered,
                            faults_injected: r.faults_injected,
                        })
                        .map_err(|e| Box::new(e) as JobError)
                })
            })
            .collect()
    };
    let supervisor = |seed: u64| {
        Supervisor::builder()
            .retries(2)
            .deadline(Duration::from_secs(30))
            .fault_profile(FaultProfile::Chaos)
            .seed(seed)
            .build()
    };
    let a = supervisor(1234).run(&specs());
    let b = supervisor(1234).run(&specs());
    // Same seed + plan => byte-identical canonical report and outputs.
    assert_eq!(a.report.canonical(), b.report.canonical());
    assert_eq!(a.outputs, b.outputs);
    // ... and the same telemetry event sequence (timings excluded).
    assert_eq!(a.telemetry.canonical_events(), b.telemetry.canonical_events());
    assert!(a.report.total_faults() > 0, "chaos must actually inject");
    assert_eq!(a.report.exit_code(), 0, "chaos degrades, not fails");

    // A different seed draws a different fault schedule.
    let c = supervisor(4321).run(&specs());
    assert_ne!(a.report.canonical(), c.report.canonical());
}
