//! End-to-end capacity-ramp contracts, driving the real `experiments`
//! binary:
//!
//! - A short ramp against an overloadable self-spawned daemon finds a
//!   saturation knee inside the tested range and writes a well-formed,
//!   code-rev-stamped capacity report.
//! - Ramping an external daemon (`--addr`) leaves it healthy: a plain
//!   query succeeds after the overload phases, i.e. shedding recovered.

use humnet::serve::ramp::CAPACITY_SCHEMA;
use humnet::serve::CapacityReport;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const EXE: &str = env!("CARGO_BIN_EXE_experiments");

/// A unique scratch dir per test so parallel tests never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("humnet-ramp-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(EXE)
        .args(args)
        .output()
        .expect("experiments binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A ramp schedule that saturates a held-worker daemon fast: capacity is
/// roughly `concurrency / hold` ≈ 20 rps, far below `--max-rps`, so the
/// knee must be found by shedding (the p99 SLO is set far out of reach).
const RAMP_ARGS: &[&str] = &[
    "--initial-rps",
    "4",
    "--increment-rps",
    "16",
    "--max-rps",
    "200",
    "--step-ms",
    "500",
    "--bisect-iters",
    "2",
    "--workers",
    "8",
    "--mix-seeds",
    "0",
    "--slo-p99-ms",
    "5000",
];

fn assert_well_formed_report(path: &std::path::Path, out: &Output) -> CapacityReport {
    assert!(out.status.success(), "{}", stderr(out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        stdout.contains("max sustainable:"),
        "headline line missing:\n{stdout}"
    );
    let text = std::fs::read_to_string(path).expect("capacity report written");
    let report = CapacityReport::from_json(&text).expect("capacity report parses");
    assert_eq!(report.schema, CAPACITY_SCHEMA);
    assert!(!report.code_rev.is_empty(), "report must carry the code rev");
    assert!(report.saturated, "tiny daemon must saturate: {report:?}");
    assert!(
        report.max_sustainable_rps > 0.0 && report.max_sustainable_rps < report.max_rps,
        "knee must sit inside the tested range: {report:?}"
    );
    assert!(report.steps.len() >= 2, "{report:?}");
    assert!(
        report.steps.iter().any(|s| !s.pass),
        "an SLO-breaking step is what brackets the knee: {report:?}"
    );
    assert!(
        report.steps.iter().any(|s| s.pass),
        "a passing step is the other half of the bracket: {report:?}"
    );
    report
}

#[test]
fn self_spawned_ramp_finds_a_knee_and_writes_the_report() {
    let dir = scratch("self");
    let cache = dir.join("cache");
    let out_path = dir.join("CAPACITY.json");
    let history = dir.join("history.jsonl");
    let out = run(&[
        &[
            "ramp",
            "--hold-ms",
            "50",
            "--queue-depth",
            "2",
            "--concurrency",
            "1",
            "--cache-dir",
            cache.to_str().unwrap(),
            "--capacity-out",
            out_path.to_str().unwrap(),
            "--history-file",
            history.to_str().unwrap(),
        ],
        RAMP_ARGS,
    ]
    .concat());
    let report = assert_well_formed_report(&out_path, &out);
    // mix-seeds 0 = a fresh seed per request: the measured load is all
    // cache misses (every request runs an experiment).
    assert_eq!(report.steps.iter().map(|s| s.hits).sum::<u64>(), 0);
    assert!(
        stderr(&out).contains("spawned in-process daemon"),
        "{}",
        stderr(&out)
    );

    // The ramp appended this code-rev's knee to the trend ledger, and
    // --trend renders it without ramping again.
    assert!(
        stderr(&out).contains("capacity trend appended"),
        "{}",
        stderr(&out)
    );
    let ledger = std::fs::read_to_string(&history).expect("history ledger written");
    assert_eq!(ledger.lines().count(), 1, "{ledger}");
    assert!(ledger.contains(&report.code_rev), "{ledger}");
    let trend = run(&["ramp", "--trend", "--history-file", history.to_str().unwrap()]);
    assert!(trend.status.success(), "{}", stderr(&trend));
    let table = String::from_utf8_lossy(&trend.stdout).into_owned();
    assert!(table.contains("Capacity trend"), "{table}");
    assert!(table.contains(&report.code_rev), "{table}");
    assert!(table.contains("1 revision(s)"), "{table}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kills the daemon on drop so a failed assertion never leaks a process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn ramp_against_an_external_daemon_leaves_it_serving() {
    let dir = scratch("external");
    let ready = dir.join("ready");
    let child = Command::new(EXE)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--cache-dir",
            dir.join("cache").to_str().unwrap(),
            "--ready-file",
            ready.to_str().unwrap(),
            "--hold-ms",
            "50",
            "--queue-depth",
            "2",
            "--concurrency",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let t0 = Instant::now();
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&ready) {
            let text = text.trim().to_owned();
            if !text.is_empty() {
                break text;
            }
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "daemon never wrote its ready file"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    let daemon = Daemon { child, addr };

    let out_path = dir.join("CAPACITY.json");
    let history = dir.join("history.jsonl");
    let out = run(&[
        &[
            "ramp",
            "--addr",
            &daemon.addr,
            "--capacity-out",
            out_path.to_str().unwrap(),
            "--history-file",
            history.to_str().unwrap(),
        ],
        RAMP_ARGS,
    ]
    .concat());
    let report = assert_well_formed_report(&out_path, &out);
    assert_eq!(report.addr, daemon.addr);
    assert!(
        report.steps.iter().map(|s| s.shed).sum::<u64>() > 0,
        "overload past the knee must shed: {report:?}"
    );

    // Shed recovery: after the ramp drove the daemon past saturation, a
    // plain query is answered definitively (miss, not overloaded/hang).
    let after = run(&["query", "f1", "--addr", &daemon.addr, "--seed", "990099"]);
    assert!(after.status.success(), "{}", stderr(&after));
    assert!(stderr(&after).contains("query: miss"), "{}", stderr(&after));

    let down = run(&["query", "--shutdown", "--addr", &daemon.addr]);
    assert!(down.status.success(), "{}", stderr(&down));
    let mut daemon = daemon;
    let status = daemon.child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit: {status:?}");
    std::mem::forget(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}
