//! Internet-scale routing contract (ROADMAP: internet-scale item).
//!
//! The fast test keeps a 10k-AS synthetic internet inside the default test
//! budget. The `#[ignore]`d test is the CI scale-smoke gate: build a 100k-AS
//! topology, compute routes toward a 1k-destination sample under a
//! wall-clock budget, and check route-metric invariants. Run it with
//! `cargo test --release --test scale -- --ignored`.

use humnet::ixp::{synthetic_internet, RouteKind, RoutingTable};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic stride sample of `k` destinations out of `n` ASes.
fn sample_destinations(n: usize, k: usize) -> Vec<usize> {
    let stride = (n / k).max(1);
    (0..k).map(|i| (i * stride + i * i % stride.max(2)) % n).collect()
}

/// Route-metric invariants on a sampled table: every (src, dst) pair with a
/// computed destination row is served, paths start at src and end at dst,
/// and transit hops stay within a sane internet diameter.
fn check_route_invariants(table: &RoutingTable, n: usize, dests: &[usize], spot_srcs: usize) {
    let mut served = 0usize;
    let mut max_hops = 0usize;
    for s in 0..spot_srcs {
        let src = (s * 7919) % n;
        for &dst in dests.iter().take(64) {
            let route = table.route(src, dst).expect("sampled row must route");
            served += 1;
            max_hops = max_hops.max(route.hops());
            if src == dst {
                assert_eq!(route.kind, RouteKind::SelfRoute);
                continue;
            }
            assert_eq!(route.path.first(), Some(&src));
            assert_eq!(route.path.last(), Some(&dst));
            // Valley-free shape: at most one peer hop, already encoded in
            // the route kind; a sanity bound on path length.
            assert!(route.hops() < 32, "implausible path {src}->{dst}");
        }
    }
    assert!(served > 0);
    assert!(max_hops >= 1, "spot checks must cross at least one link");
}

#[test]
fn ten_thousand_as_sample_routes_quickly() {
    let t = synthetic_internet(10_000, 11).unwrap();
    let ft = Arc::new(t.freeze());
    let dests = sample_destinations(10_000, 128);
    let table = RoutingTable::compute_frozen(&ft, &dests, 4).unwrap();
    assert_eq!(table.as_count(), 10_000);
    assert_eq!(table.destinations().len(), dests.len());
    check_route_invariants(&table, 10_000, &dests, 16);
    // Digest is stable across worker counts.
    let serial = RoutingTable::compute_frozen(&ft, &dests, 1).unwrap();
    assert_eq!(table.digest(), serial.digest());
}

/// CI scale-smoke: 100k ASes, 1k-destination sample, wall-clock budget.
#[test]
#[ignore = "scale smoke: run with --ignored in release mode"]
fn hundred_thousand_as_internet_within_budget() {
    let t0 = Instant::now();
    let t = synthetic_internet(100_000, 11).unwrap();
    let build = t0.elapsed();
    assert_eq!(t.as_count(), 100_000);

    let t1 = Instant::now();
    let ft = Arc::new(t.freeze());
    let dests = sample_destinations(100_000, 1_000);
    let table = RoutingTable::compute_frozen(&ft, &dests, 8).unwrap();
    let compute = t1.elapsed();

    assert_eq!(table.destinations().len(), dests.len());
    check_route_invariants(&table, 100_000, &dests, 32);

    // Digest stability: a second computation is byte-identical.
    let again = RoutingTable::compute_frozen(&ft, &dests, 2).unwrap();
    assert_eq!(table.digest(), again.digest());

    // Wall-clock budget: generous for shared CI runners, tight enough to
    // catch an accidental O(n^2) regression (which would take minutes).
    let budget = Duration::from_secs(120);
    assert!(
        build + compute < budget,
        "scale smoke blew its budget: build {build:?} + compute {compute:?} >= {budget:?}"
    );
    eprintln!("scale smoke: build {build:?}, 1k-dest compute {compute:?}");
}
