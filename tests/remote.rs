//! Remote-dispatch contracts, driving the real `experiments` binary —
//! a dispatcher plus genuine `experiments worker` daemons over loopback
//! TCP:
//!
//! - A 2-worker `dispatch --workers` produces a merged canonical journal
//!   byte-identical to the in-process 1-shard `run` of the same seed.
//! - `--chaos-net kill` cuts a worker's connection mid-lease; the retry
//!   re-leases on the surviving worker and the merged journal is still
//!   byte-identical.
//! - Dead worker addresses fail over to local child processes (and the
//!   journal still matches); with `--no-failover --allow-partial` they
//!   degrade to exit 3 with the lost experiments named.
//! - A worker drains gracefully on a shutdown frame.

use humnet::resilience::Lease;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const EXE: &str = env!("CARGO_BIN_EXE_experiments");

/// A unique scratch dir per test so parallel tests never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("humnet-remote-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(EXE)
        .args(args)
        .output()
        .expect("experiments binary runs")
}

fn canonical_journal(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap();
    humnet::telemetry::journal::from_jsonl(&text)
        .unwrap()
        .iter()
        .map(|e| e.canonical())
        .collect()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Kills the worker on drop so a failed assertion never leaks a daemon.
struct WorkerProc {
    child: Child,
    addr: String,
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Start `experiments worker` on a free port and wait for its ready file.
fn start_worker(dir: &Path, tag: &str) -> WorkerProc {
    let ready = dir.join(format!("worker-{tag}.ready"));
    let _ = std::fs::remove_file(&ready);
    let child = Command::new(EXE)
        .args([
            "worker",
            "--addr",
            "127.0.0.1:0",
            "--ready-file",
            ready.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("worker spawns");
    let t0 = Instant::now();
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&ready) {
            let text = text.trim().to_owned();
            if !text.is_empty() {
                break text;
            }
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "worker never wrote its ready file"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    WorkerProc { child, addr }
}

/// Drain a worker over the wire and require a clean exit.
fn shutdown_worker(mut worker: WorkerProc) {
    let mut stream =
        TcpStream::connect(&worker.addr).expect("connect to worker for shutdown");
    let line = Lease::shutdown().to_line().unwrap();
    writeln!(stream, "{line}").unwrap();
    stream.flush().unwrap();
    // The ack proves the drain path answered before the process exits.
    let mut reader = BufReader::new(&stream);
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("shutdown ack");
    assert!(ack.contains("\"ok\""), "shutdown ack: {ack}");
    let status = worker.child.wait().expect("worker exits");
    assert!(status.success(), "worker exit: {status:?}");
    // Already reaped; keep Drop from killing a reused pid.
    std::mem::forget(worker);
}

/// The in-process ground truth journal for a given seed and id subset.
fn baseline_journal(dir: &Path, seed: &str, ids: &[&str]) -> PathBuf {
    let path = dir.join("inproc.jsonl");
    let mut args = vec![
        "run", "--report-only", "--fault-profile", "chaos", "--seed", seed,
        "--journal-out", path.to_str().unwrap(),
    ];
    args.extend_from_slice(ids);
    let out = run(&args);
    assert!(out.status.success(), "{}", stderr(&out));
    path
}

#[test]
fn two_worker_dispatch_is_byte_identical_to_the_in_process_run() {
    let dir = scratch("identity");
    let inproc = baseline_journal(&dir, "7", &[]);
    let disp = dir.join("dispatch.jsonl");

    let w0 = start_worker(&dir, "a");
    let w1 = start_worker(&dir, "b");
    let workers = format!("{},{}", w0.addr, w1.addr);

    let out = run(&[
        "dispatch", "--procs", "2", "--report-only", "--fault-profile", "chaos",
        "--seed", "7",
        "--workers", &workers,
        "--journal-out", disp.to_str().unwrap(),
        "--scratch", dir.join("s").to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let a = canonical_journal(&inproc);
    let b = canonical_journal(&disp);
    assert!(!a.is_empty());
    assert_eq!(a, b, "2-worker remote dispatch must reproduce the 1-shard journal");

    // The workers are still alive and drain cleanly afterwards: dispatch
    // leases against long-lived daemons, it does not consume them.
    shutdown_worker(w0);
    shutdown_worker(w1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_net_kill_mid_lease_retries_and_stays_byte_identical() {
    let dir = scratch("chaos-kill");
    let inproc = baseline_journal(&dir, "11", &[]);
    let disp = dir.join("dispatch.jsonl");

    let w0 = start_worker(&dir, "a");
    let w1 = start_worker(&dir, "b");
    let workers = format!("{},{}", w0.addr, w1.addr);

    // Worker 0's first lease (shard 0, attempt 0) is killed mid-lease;
    // the retry rotates shard 0 onto worker 1, which finishes the slice.
    let out = run(&[
        "dispatch", "--procs", "2", "--report-only", "--fault-profile", "chaos",
        "--seed", "11",
        "--workers", &workers,
        "--chaos-net", "kill:0", "--shard-retries", "1",
        "--journal-out", disp.to_str().unwrap(),
        "--scratch", dir.join("s").to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("remote attempt 1"),
        "the remote retry must be visible in supervision logs: {}",
        stderr(&out)
    );
    assert_eq!(
        canonical_journal(&inproc),
        canonical_journal(&disp),
        "a chaos-killed lease must still reproduce the 1-shard journal"
    );

    // Worker 1 survived the whole run and still drains; worker 0's
    // connection thread died with the chaos kill but its accept loop
    // lives on, so it drains too.
    shutdown_worker(w0);
    shutdown_worker(w1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_workers_fail_over_to_local_children_and_stay_byte_identical() {
    let dir = scratch("failover");
    let inproc = baseline_journal(&dir, "7", &["f3", "t2"]);
    let disp = dir.join("dispatch.jsonl");

    // Nothing listens on these ports: every remote attempt fails fast and
    // the supervision ladder falls back to local child processes.
    let out = run(&[
        "dispatch", "--procs", "2", "--report-only", "--fault-profile", "chaos",
        "--seed", "7",
        "--workers", "127.0.0.1:1,127.0.0.1:1",
        "--shard-retries", "1", "--connect-timeout-ms", "500",
        "--journal-out", disp.to_str().unwrap(),
        "--scratch", dir.join("s").to_str().unwrap(),
        "f3", "t2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("failing over to a local child"),
        "{}",
        stderr(&out)
    );
    assert_eq!(
        canonical_journal(&inproc),
        canonical_journal(&disp),
        "local failover must still reproduce the 1-shard journal"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_workers_without_failover_degrade_under_allow_partial() {
    let dir = scratch("degraded");
    let out = run(&[
        "dispatch", "--procs", "2", "--report-only", "--seed", "7",
        "--workers", "127.0.0.1:1",
        "--no-failover", "--shard-retries", "1", "--allow-partial",
        "--connect-timeout-ms", "500",
        "--scratch", dir.join("s").to_str().unwrap(),
        "f3", "t2", "f4", "t3",
    ]);
    assert_eq!(out.status.code(), Some(3), "degraded exit: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("DEGRADED"), "{text}");
    assert!(text.contains("missing shard 0 after 2 attempts"), "{text}");
    assert!(text.contains("missing shard 1 after 2 attempts"), "{text}");
    assert!(text.contains("lost experiments: t2 f3"), "{text}");
    assert!(text.contains("lost experiments: f4 t3"), "{text}");
    assert!(
        stderr(&out).contains("gave up after 2 remote attempts"),
        "{}",
        stderr(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_workers_without_failover_fail_loudly_by_default() {
    let dir = scratch("loud");
    let out = run(&[
        "dispatch", "--procs", "2", "--report-only", "--seed", "7",
        "--workers", "127.0.0.1:1",
        "--no-failover", "--shard-retries", "0",
        "--connect-timeout-ms", "500",
        "--scratch", dir.join("s").to_str().unwrap(),
        "f3", "t2",
    ]);
    assert_eq!(out.status.code(), Some(2), "fatal exit: {}", stderr(&out));
    assert!(stderr(&out).contains("shard"), "{}", stderr(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn remote_cli_rejects_bad_arguments() {
    for (args, needle) in [
        (
            vec!["dispatch", "--procs", "2", "--chaos-net", "kill:0"],
            "--chaos-net needs --workers",
        ),
        (
            vec!["dispatch", "--procs", "2", "--no-failover"],
            "--no-failover needs --workers",
        ),
        (
            vec!["dispatch", "--procs", "2", "--workers", "h:1", "--chaos-net", "explode:0"],
            "bad --chaos-net",
        ),
        (
            vec!["dispatch", "--procs", "2", "--workers", ","],
            "--workers needs",
        ),
        (
            vec!["dispatch", "--procs", "2", "--workers", "h:1", "--connect-timeout-ms", "0"],
            "positive",
        ),
        (vec!["worker", "stray"], "no positional arguments"),
        (vec!["worker", "--heartbeat-ms", "0"], "positive"),
    ] {
        let out = run(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(stderr(&out).contains(needle), "{args:?}: {}", stderr(&out));
    }
}
