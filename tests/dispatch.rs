//! Cross-process dispatch contracts, driving the real `experiments`
//! binary end to end:
//!
//! - A K-process `dispatch` produces a merged canonical journal and
//!   canonical report byte-identical to the in-process 1-shard `run` of
//!   the same seed — including when chaos kills a shard mid-run and the
//!   supervisor retries it.
//! - A hung child is killed at the shard deadline instead of wedging the
//!   dispatch.
//! - Exhausted retries fail loudly by default (exit 2) and degrade
//!   gracefully under `--allow-partial` (exit 3, missing shard and its
//!   experiments named in the report).
//! - `--breaker-cooldown` round-trips into the captured journal's
//!   run-start line on both `run` and `dispatch`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const EXE: &str = env!("CARGO_BIN_EXE_experiments");

/// A unique scratch dir per test so parallel tests never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("humnet-dispatch-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(EXE)
        .args(args)
        .output()
        .expect("experiments binary runs")
}

fn canonical_journal(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap();
    humnet::telemetry::journal::from_jsonl(&text)
        .unwrap()
        .iter()
        .map(|e| e.canonical())
        .collect()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn four_proc_dispatch_is_byte_identical_to_the_in_process_run() {
    let dir = scratch("identity");
    let inproc = dir.join("inproc.jsonl");
    let disp = dir.join("dispatch.jsonl");

    let base = run(&[
        "run", "--report-only", "--fault-profile", "chaos", "--seed", "7",
        "--journal-out", inproc.to_str().unwrap(),
    ]);
    assert!(base.status.success(), "{}", stderr(&base));

    let out = run(&[
        "dispatch", "--procs", "4", "--report-only", "--fault-profile", "chaos",
        "--seed", "7",
        "--journal-out", disp.to_str().unwrap(),
        "--scratch", dir.join("s").to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let a = canonical_journal(&inproc);
    let b = canonical_journal(&disp);
    assert!(!a.is_empty());
    assert_eq!(a, b, "4-process dispatch must reproduce the 1-shard journal");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_killed_shard_is_retried_and_the_journal_is_still_identical() {
    let dir = scratch("chaos-retry");
    let inproc = dir.join("inproc.jsonl");
    let disp = dir.join("dispatch.jsonl");

    let base = run(&[
        "run", "--report-only", "--fault-profile", "chaos", "--seed", "11",
        "--journal-out", inproc.to_str().unwrap(),
    ]);
    assert!(base.status.success(), "{}", stderr(&base));

    // Shard 2's first spawn is chaos-killed (exit 137); the retry budget
    // of 1 lets its second spawn finish the slice.
    let out = run(&[
        "dispatch", "--procs", "4", "--report-only", "--fault-profile", "chaos",
        "--seed", "11",
        "--chaos-proc", "kill:2", "--shard-retries", "1",
        "--journal-out", disp.to_str().unwrap(),
        "--scratch", dir.join("s").to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("shard 2 attempt 1"),
        "the retry must be visible in supervision logs: {}",
        stderr(&out)
    );
    assert_eq!(
        canonical_journal(&inproc),
        canonical_journal(&disp),
        "a crash-retried dispatch must still reproduce the 1-shard journal"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hung_child_is_killed_at_the_shard_deadline() {
    let dir = scratch("hang");
    // Liveness off: the test pins the kill on the deadline path. A small
    // experiment subset keeps the healthy shard quick.
    let out = run(&[
        "dispatch", "--procs", "2", "--report-only", "--seed", "7",
        "--chaos-proc", "hang:0", "--shard-retries", "0", "--allow-partial",
        "--shard-deadline-ms", "1500", "--liveness-ms", "0",
        "--scratch", dir.join("s").to_str().unwrap(),
        "f3", "t2",
    ]);
    assert_eq!(out.status.code(), Some(3), "degraded exit: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("DEGRADED"), "{text}");
    assert!(text.contains("shard deadline"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn silent_child_is_killed_by_heartbeat_liveness_before_the_deadline() {
    let dir = scratch("liveness");
    // A hung child never heartbeats, so a 1s liveness window kills it long
    // before the (deliberately huge) 60s deadline would.
    let out = run(&[
        "dispatch", "--procs", "2", "--report-only", "--seed", "7",
        "--chaos-proc", "hang:0", "--shard-retries", "0", "--allow-partial",
        "--shard-deadline-ms", "60000", "--liveness-ms", "1000",
        "--scratch", dir.join("s").to_str().unwrap(),
        "f3", "t2",
    ]);
    assert_eq!(out.status.code(), Some(3), "degraded exit: {}", stderr(&out));
    assert!(stdout(&out).contains("no heartbeat"), "{}", stdout(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_retries_degrade_gracefully_with_allow_partial() {
    let dir = scratch("partial");
    // Both spawn attempts of shard 1 are killed: the retry budget runs
    // out and --allow-partial degrades instead of failing.
    let out = run(&[
        "dispatch", "--procs", "2", "--report-only", "--seed", "7",
        "--chaos-proc", "kill:1", "--chaos-proc", "kill:1:1",
        "--shard-retries", "1", "--allow-partial",
        "--scratch", dir.join("s").to_str().unwrap(),
        "f3", "t2", "f4", "t3",
    ]);
    assert_eq!(out.status.code(), Some(3), "degraded exit: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("DEGRADED"), "{text}");
    assert!(text.contains("missing shard 1 after 2 attempts"), "{text}");
    // Shard 1 owned the second half of the canonical slice; its lost
    // experiments are named.
    assert!(text.contains("lost experiments: f4 t3"), "{text}");
    // The surviving shard's report rows are intact.
    assert!(text.contains("f3"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_shard_without_allow_partial_fails_loudly() {
    let dir = scratch("loud");
    let out = run(&[
        "dispatch", "--procs", "2", "--report-only", "--seed", "7",
        "--chaos-proc", "kill:1", "--chaos-proc", "kill:1:1",
        "--shard-retries", "1",
        "--scratch", dir.join("s").to_str().unwrap(),
        "f3", "t2", "f4", "t3",
    ]);
    assert_eq!(out.status.code(), Some(2), "fatal exit: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("shard 1"), "{err}");
    assert!(err.contains("after all retries"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn breaker_cooldown_round_trips_through_run_and_dispatch_journals() {
    let dir = scratch("cooldown");
    let run_journal = dir.join("run.jsonl");
    let disp_journal = dir.join("dispatch.jsonl");

    let a = run(&[
        "run", "--report-only", "--seed", "7", "--breaker-cooldown", "2",
        "--journal-out", run_journal.to_str().unwrap(),
        "f3", "t2",
    ]);
    assert!(a.status.success(), "{}", stderr(&a));
    let b = run(&[
        "dispatch", "--procs", "2", "--report-only", "--seed", "7",
        "--breaker-cooldown", "2",
        "--journal-out", disp_journal.to_str().unwrap(),
        "--scratch", dir.join("s").to_str().unwrap(),
        "f3", "t2",
    ]);
    assert!(b.status.success(), "{}", stderr(&b));

    for path in [&run_journal, &disp_journal] {
        let first = &canonical_journal(path)[0];
        assert!(first.contains("run-start"), "{first}");
        assert!(first.contains("cooldown=2"), "{first}");
    }
    // The flag is part of the canonical run configuration, so the two
    // journals agree event for event.
    assert_eq!(canonical_journal(&run_journal), canonical_journal(&disp_journal));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dispatch_cli_rejects_bad_arguments() {
    for (args, needle) in [
        (vec!["dispatch"], "--procs"),
        (vec!["dispatch", "--procs", "0"], "--procs must be positive"),
        (vec!["dispatch", "--procs", "2", "--chaos-proc", "explode:1"], "--chaos-proc"),
        (vec!["dispatch", "--procs", "2", "--shard-deadline-ms", "0"], "positive"),
        (vec!["dispatch", "--procs", "2", "nosuch"], "unknown experiment id"),
    ] {
        let out = run(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(stderr(&out).contains(needle), "{args:?}: {}", stderr(&out));
    }
}
