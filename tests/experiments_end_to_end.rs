//! End-to-end integration tests: every experiment in the suite runs and
//! reproduces the qualitative shape the paper commits to. These are the
//! assertions behind `EXPERIMENTS.md`.

use humnet::agenda::MethodRegime;
use humnet::core::experiments as exp;

#[test]
fn f1_attention_is_concentrated_under_data_driven_regime() {
    let r = exp::f1_attention(42).unwrap();
    // Paper §1: attention concentrates on dominant players' problems.
    assert!(r.gini > 0.6, "gini = {}", r.gini);
    // Lorenz curve is below the diagonal everywhere.
    for &(x, y) in &r.lorenz.points {
        assert!(y <= x + 1e-9);
    }
    // The hyperscaler row out-publishes the community row.
    let pubs = |label: &str| -> u64 {
        r.by_class
            .rows
            .iter()
            .find(|row| row[0] == label)
            .unwrap()[1]
            .parse()
            .unwrap()
    };
    assert!(pubs("hyperscaler") > 3 * pubs("community-operator"));
}

#[test]
fn t1_par_widens_coverage_at_a_publication_cost() {
    let (rows, _) = exp::t1_regimes(&[1, 2, 3]).unwrap();
    let get = |r: MethodRegime| rows.iter().find(|x| x.regime == r).unwrap();
    let dd = get(MethodRegime::DataDriven);
    let par = get(MethodRegime::Par);
    let eth = get(MethodRegime::Ethnographic);
    let mixed = get(MethodRegime::Mixed);
    // Paper §2: community-driven inquiry surfaces what data-driven misses.
    assert!(par.marginalized_coverage > dd.marginalized_coverage + 0.1);
    assert!(eth.marginalized_coverage > dd.marginalized_coverage);
    // §6.2.1's cost is real: fewer publications under PAR.
    assert!(dd.publications > par.publications);
    // Mixed interpolates.
    assert!(mixed.marginalized_coverage > dd.marginalized_coverage);
    assert!(mixed.marginalized_coverage < par.marginalized_coverage + 0.05);
    // Attention is flatter under PAR.
    assert!(dd.gini > par.gini);
}

#[test]
fn f2_positionality_gap_between_cultures() {
    let (table, series) = exp::f2_positionality(7).unwrap();
    let rate = |label: &str| -> f64 {
        table.rows.iter().find(|r| r[0] == label).unwrap()[2].parse().unwrap()
    };
    // Paper §4/§6.4: rare at networking venues, normal in HCI and social
    // science.
    assert!(rate("systems-networking") < 0.05);
    assert!(rate("measurement") < 0.05);
    assert!(rate("hci-cscw") > 0.12);
    assert!(rate("social-science") > rate("hci-cscw"));
    // Detector agrees with the tags.
    for row in &table.rows {
        let tagged: f64 = row[2].parse().unwrap();
        let detected: f64 = row[3].parse().unwrap();
        assert!((tagged - detected).abs() < 0.02, "row {row:?}");
    }
    assert_eq!(series.len(), 2);
}

#[test]
fn t2_reliability_climbs_with_codebook_refinement() {
    let table = exp::t2_irr(5, 6).unwrap();
    let alpha = |row: usize| -> f64 { table.rows[row][3].parse().unwrap() };
    assert!(alpha(6) > alpha(0) + 0.15);
    // Mostly monotone (allow one seed-noise dip).
    let dips = (0..6).filter(|&i| alpha(i + 1) < alpha(i) - 0.02).count();
    assert!(dips <= 1, "too many dips in alpha trajectory");
}

#[test]
fn f3_regulation_defeated_by_asn_splitting() {
    let (comply, split, _) = exp::f3_telmex(5).unwrap();
    // Full compliance localizes competitor traffic at any enforcement.
    for &(_, share) in &comply.points {
        assert!(share > 0.95, "comply share = {share}");
    }
    // Circumvention at zero enforcement keeps the share near the
    // competitors-only baseline...
    assert!(split.points[0].1 < 0.5);
    // ...and enforcement monotonically claws it back.
    for w in split.points.windows(2) {
        assert!(w[1].1 >= w[0].1 - 1e-9);
    }
    assert!(split.points.last().unwrap().1 > 0.9);
}

#[test]
fn f4_content_presence_pulls_exchange_home() {
    let (foreign, local) = exp::f4_gravity(6).unwrap();
    // With no local content, over half of South traffic is exchanged
    // abroad; with full presence it drops to (near) zero.
    assert!(foreign.points[0].1 > 0.5, "foreign share = {}", foreign.points[0].1);
    assert!(foreign.points.last().unwrap().1 < 0.1);
    // Local exchange share mirrors it.
    assert!(local.points.last().unwrap().1 > local.points[0].1 + 0.3);
}

#[test]
fn t3_stewardship_beats_hero_volunteers() {
    let table = exp::t3_sustainability(&[1, 2, 3, 4, 5]).unwrap();
    let uptime = |label: &str| -> f64 {
        table.rows.iter().find(|r| r[0] == label).unwrap()[1].parse().unwrap()
    };
    let attrition = |label: &str| -> f64 {
        table.rows.iter().find(|r| r[0] == label).unwrap()[3].parse().unwrap()
    };
    assert!(uptime("distributed-stewardship") > uptime("few-core"));
    assert!(attrition("few-core") > 0.5);
    assert!(attrition("paid-staff") == 0.0);
    let cost = |label: &str| -> f64 {
        table.rows.iter().find(|r| r[0] == label).unwrap()[4].parse().unwrap()
    };
    assert_eq!(cost("distributed-stewardship"), 0.0);
    assert!(cost("paid-staff") > 0.0);
}

#[test]
fn f5_community_tokens_get_both_fairness_and_utilization() {
    let table = exp::f5_congestion(1).unwrap();
    let get = |label: &str, col: usize| -> f64 {
        table.rows.iter().find(|r| r[0] == label).unwrap()[col].parse().unwrap()
    };
    // fairness col 1, utilization col 2, starvation col 3.
    assert!(get("community-tokens", 1) > get("free-for-all", 1));
    assert!(get("community-tokens", 2) > get("static-cap", 2));
    assert!(get("community-tokens", 3) < get("free-for-all", 3));
    assert!(get("free-for-all", 2) >= get("community-tokens", 2) - 1e-9);
}

#[test]
fn t4_ladder_orders_archetypes() {
    let table = exp::t4_ladder().unwrap();
    let scores: Vec<f64> = table.rows.iter().map(|r| r[1].parse().unwrap()).collect();
    assert!(scores.windows(2).all(|w| w[1] > w[0]));
    let compliant: Vec<bool> = table.rows.iter().map(|r| r[2] == "true").collect();
    assert_eq!(compliant, vec![false, false, true, true, true, true]);
}

#[test]
fn f6_patchwork_with_memos_matches_traditional() {
    let table = exp::f6_patchwork().unwrap();
    let insights = |label: &str| -> f64 {
        table.rows.iter().find(|r| r[0] == label).unwrap()[3].parse().unwrap()
    };
    let trad = insights("traditional");
    let patch_memo = insights("patchwork x6 + memos");
    let patch_plain = insights("patchwork x6");
    // §3's claim [17, 36]: fragmented time with reflexive practice keeps
    // depth...
    assert!(patch_memo > trad * 0.9);
    // ...but fragmentation without the discipline loses it.
    assert!(trad > patch_plain * 1.1);
}

#[test]
fn t5_cfp_broadening_admits_human_work_at_modest_systems_cost() {
    let (human, systems, _) = exp::t5_gatekeeping(6).unwrap();
    let h0 = human.points[0].1;
    let h_last = human.points.last().unwrap().1;
    let s0 = systems.points[0].1;
    let s_last = systems.points.last().unwrap().1;
    assert!(h0 < 0.05, "traditional CFP shuts human work out: {h0}");
    assert!(h_last > 0.4);
    // At a *moderate* weight (w = 0.3, index 3 of the 0..0.5 sweep) the
    // venue has not flipped: systems work still gets accepted. At w = 0.5
    // human submissions outscore systems outright, which is the mirror
    // image of the original gatekeeping — the model shows both regimes.
    let s_mid = systems.points[3].1;
    assert!(s_mid > 0.05, "moderate broadening keeps systems work in: {s_mid}");
    assert!(s0 > s_last, "slots are conserved");
}

#[test]
fn f8_locality_vs_connectivity_maximization() {
    let (top, local, _) = exp::f8_growth(4).unwrap();
    // With no regional pull, the giant Northern exchange wins big.
    assert!(top.points[0].1 > 0.6, "top share = {}", top.points[0].1);
    // Strong regional affinity keeps South arrivals local.
    assert!(local.points.last().unwrap().1 > local.points[0].1 + 0.3);
    assert!(top.points.last().unwrap().1 < top.points[0].1);
}

#[test]
fn f10_internet_scale_concentration() {
    let table = exp::f10_scale(7).unwrap();
    let get = |label: &str| -> String {
        table.rows.iter().find(|r| r[0] == label).unwrap()[1].clone()
    };
    // The synthetic internet is fully reachable: every sampled demand routes.
    assert_eq!(get("flows served"), get("sampled demands"));
    assert_eq!(get("flows unserved"), "0");
    // Paper §3's concentration shape at scale: a meaningful share of volume
    // crosses peering links, and the single seeded giant IXP carries a
    // disproportionate share of it.
    let peer_share: f64 = get("peer-hop volume share").parse().unwrap();
    let giant_share: f64 = get("giant-IXP volume share").parse().unwrap();
    assert!(peer_share > 0.2, "peer share = {peer_share}");
    assert!(giant_share > 0.2, "giant share = {giant_share}");
    // Internet-plausible path lengths on a 2k-AS topology.
    let hops: f64 = get("mean AS-path hops").parse().unwrap();
    assert!((1.0..10.0).contains(&hops), "mean hops = {hops}");
}

#[test]
fn f9_cfp_intervention_reverses_methodology_collapse() {
    let (series, table) = exp::f9_adoption().unwrap();
    assert_eq!(table.rows.len(), 30);
    let start = series.points[0].1;
    let trough = series.points[15].1;
    let end = series.points.last().unwrap().1;
    assert!(trough < start, "human share declines under the traditional CFP");
    assert!(end > trough + 0.1, "and recovers after the intervention");
}

#[test]
fn t6_probes_counteract_compliance_decay() {
    let table = exp::t6_diary(5).unwrap();
    let get = |label: &str, col: usize| -> f64 {
        table.rows.iter().find(|r| r[0] == label).unwrap()[col].parse().unwrap()
    };
    // Final-week compliance (col 2) is the retention signal.
    assert!(get("diary + probes", 2) > get("plain diary", 2) + 0.1);
    // Prompted share is zero without probes.
    assert_eq!(get("plain diary", 3), 0.0);
    assert!(get("diary + probes", 3) > 0.1);
}

#[test]
fn t7_dues_policy_trade_offs() {
    let table = exp::t7_economics(&[1, 2, 3, 4, 5]).unwrap();
    let get = |label: &str, col: usize| -> f64 {
        table.rows.iter().find(|r| r[0] == label).unwrap()[col].parse().unwrap()
    };
    // Income scaling retains at least as many members as flat dues (col 3),
    // and donations are the least solvent (col 1).
    assert!(get("income-scaled", 3) >= get("flat", 3));
    assert!(get("donation", 1) >= get("income-scaled", 1));
}

#[test]
fn f7_gap_holds_on_every_recommendation() {
    let table = exp::f7_audit(3).unwrap();
    let get = |label: &str, col: usize| -> f64 {
        table.rows.iter().find(|r| r[0] == label).unwrap()[col].parse().unwrap()
    };
    for col in 1..=3 {
        assert!(
            get("ictd", col) > get("systems-networking", col),
            "column {col}"
        );
    }
}
