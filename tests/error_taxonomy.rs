//! Error-taxonomy contract: every crate's error enum is a well-behaved
//! `std::error::Error` (`+ Send + Sync + 'static`, so it can cross thread
//! boundaries and live in boxed chains), its Display output is a plain
//! lowercase message without trailing punctuation, and
//! `CoreError::Upstream` preserves the originating error so `source()`
//! walks back to it.

use humnet::agenda::AgendaError;
use humnet::community::CommunityError;
use humnet::core::CoreError;
use humnet::corpus::CorpusError;
use humnet::graph::GraphError;
use humnet::ixp::IxpError;
use humnet::qual::QualError;
use humnet::resilience::render_chain;
use humnet::stats::StatsError;
use humnet::survey::SurveyError;
use humnet::text::TextError;
use std::error::Error;

/// Compile-time assertion: the type is usable as a boxed, thread-safe
/// error. Instantiated below for all ten crate error enums — if any crate
/// drops an impl, this test file stops compiling.
fn assert_error<E: Error + Send + Sync + 'static>() {}

#[test]
fn all_ten_error_enums_are_thread_safe_errors() {
    assert_error::<StatsError>();
    assert_error::<GraphError>();
    assert_error::<TextError>();
    assert_error::<CorpusError>();
    assert_error::<QualError>();
    assert_error::<IxpError>();
    assert_error::<CommunityError>();
    assert_error::<AgendaError>();
    assert_error::<SurveyError>();
    assert_error::<CoreError>();
}

#[test]
fn display_messages_are_tidy() {
    // A representative value per enum; Display must be nonempty, not
    // Debug-shaped, and not end in punctuation.
    let messages: Vec<String> = vec![
        StatsError::EmptyInput.to_string(),
        GraphError::InvalidNode(3).to_string(),
        TextError::EmptyInput.to_string(),
        CorpusError::EmptyCorpus.to_string(),
        QualError::EmptyInput.to_string(),
        IxpError::InvalidAs(7).to_string(),
        CommunityError::EmptyInput.to_string(),
        AgendaError::EmptyInput.to_string(),
        SurveyError::EmptyInput.to_string(),
        CoreError::EmptyInput.to_string(),
        CoreError::InvalidParameter("probability").to_string(),
        CoreError::NotFound("partner").to_string(),
    ];
    for msg in messages {
        assert!(!msg.is_empty());
        assert!(
            !msg.ends_with(['.', '!', '\n']),
            "error message ends with punctuation: {msg:?}"
        );
        assert!(
            !msg.contains("Error {") && !msg.contains("::"),
            "Display looks Debug-shaped: {msg:?}"
        );
    }
}

#[test]
fn upstream_preserves_the_source_chain() {
    let core = CoreError::upstream("t3 sustainability", CommunityError::EmptyInput);
    // Display shows stage + source...
    assert_eq!(core.to_string(), format!("t3 sustainability: {}", CommunityError::EmptyInput));
    // ...and source() walks back to the typed originating error.
    let source = core.source().expect("Upstream must expose a source");
    let community = source
        .downcast_ref::<CommunityError>()
        .expect("source downcasts to the originating enum");
    assert_eq!(*community, CommunityError::EmptyInput);
    // Non-upstream variants expose no source.
    assert!(CoreError::EmptyInput.source().is_none());
}

#[test]
fn render_chain_walks_nested_upstreams() {
    let inner = CoreError::upstream("lorenz", StatsError::EmptyInput);
    let outer = CoreError::upstream("f1 attention", inner);
    let chain = render_chain(&outer);
    // Both stages and the root cause appear once each.
    assert!(chain.starts_with("f1 attention: lorenz:"), "{chain}");
    assert_eq!(chain.matches("lorenz").count(), 1, "{chain}");
    assert!(chain.contains(&StatsError::EmptyInput.to_string()), "{chain}");
}

#[test]
fn experiment_failures_carry_their_origin() {
    // An experiment that fails inside a domain crate surfaces a CoreError
    // whose source is the domain crate's own error type.
    let mut cfg = humnet::agenda::AgendaConfig::default();
    cfg.researchers = 0; // invalid: the agenda crate rejects it
    let err = humnet::agenda::AgendaSim::new(cfg).unwrap_err();
    let core = CoreError::upstream("agenda config", err);
    assert!(core.source().unwrap().downcast_ref::<AgendaError>().is_some());
}
