//! Property-based tests over the toolkit's core invariants.

use humnet::community::{AllocationPolicy, CongestionConfig, CongestionSim};
use humnet::graph::{erdos_renyi, pagerank};
use humnet::ixp::{AsKind, AsTopology, RegionTag, RouteKind, RoutingTable};
use humnet::qual::{cohen_kappa, krippendorff_alpha, percent_agreement};
use humnet::stats::{
    evenness, gini, jain_fairness, lorenz_curve, mean, quantile, shannon_entropy, Rng,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn gini_bounded_and_scale_invariant(
        data in prop::collection::vec(0.01f64..1000.0, 2..60),
        scale in 0.1f64..100.0,
    ) {
        let g = gini(&data).unwrap();
        prop_assert!((0.0..1.0).contains(&g));
        let scaled: Vec<f64> = data.iter().map(|x| x * scale).collect();
        let gs = gini(&scaled).unwrap();
        prop_assert!((g - gs).abs() < 1e-9);
    }

    #[test]
    fn lorenz_curve_is_convex_monotone(
        data in prop::collection::vec(0.01f64..1000.0, 2..60),
    ) {
        let curve = lorenz_curve(&data).unwrap();
        prop_assert_eq!(curve[0], (0.0, 0.0));
        for w in curve.windows(2) {
            prop_assert!(w[1].1 >= w[0].1 - 1e-12);
            prop_assert!(w[1].1 <= w[1].0 + 1e-9, "curve must stay under the diagonal");
        }
        // Slopes are nondecreasing (ascending sort => convex curve).
        for w in curve.windows(3) {
            let s1 = (w[1].1 - w[0].1) / (w[1].0 - w[0].0);
            let s2 = (w[2].1 - w[1].1) / (w[2].0 - w[1].0);
            prop_assert!(s2 >= s1 - 1e-9);
        }
    }

    #[test]
    fn jain_bounds(data in prop::collection::vec(0.0f64..100.0, 1..50)) {
        prop_assume!(data.iter().any(|&x| x > 0.0));
        let j = jain_fairness(&data).unwrap();
        let n = data.len() as f64;
        prop_assert!(j >= 1.0 / n - 1e-12);
        prop_assert!(j <= 1.0 + 1e-12);
    }

    #[test]
    fn entropy_bounds_and_evenness(
        counts in prop::collection::vec(0.01f64..100.0, 1..40),
    ) {
        let h = shannon_entropy(&counts).unwrap();
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (counts.len() as f64).ln() + 1e-9);
        let e = evenness(&counts).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&e));
    }

    #[test]
    fn quantile_is_monotone_and_bounded(
        data in prop::collection::vec(-1e6f64..1e6, 1..80),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let v_lo = quantile(&data, lo).unwrap();
        let v_hi = quantile(&data, hi).unwrap();
        prop_assert!(v_lo <= v_hi + 1e-9);
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v_lo >= min - 1e-9 && v_hi <= max + 1e-9);
    }

    #[test]
    fn mean_between_min_and_max(data in prop::collection::vec(-1e6f64..1e6, 1..80)) {
        let m = mean(&data).unwrap();
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min - 1e-6 && m <= max + 1e-6);
    }

    #[test]
    fn pagerank_is_a_distribution(seed in 0u64..500, n in 2usize..40, p in 0.05f64..0.9) {
        let mut rng = Rng::new(seed);
        let g = erdos_renyi(n, p, &mut rng).unwrap();
        let pr = pagerank(&g, 0.85, 1e-10, 200).unwrap();
        let sum: f64 = pr.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        prop_assert!(pr.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn kappa_and_alpha_agree_on_self(labels in prop::collection::vec(0usize..4, 4..40)) {
        prop_assume!(labels.iter().any(|&l| l != labels[0]));
        let a: Vec<Option<usize>> = labels.iter().map(|&l| Some(l)).collect();
        prop_assert!((cohen_kappa(&a, &a).unwrap() - 1.0).abs() < 1e-9);
        prop_assert!((percent_agreement(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        prop_assert!((krippendorff_alpha(&[a.clone(), a]).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kappa_bounded_above_by_one(
        xs in prop::collection::vec(0usize..3, 6..40),
        ys in prop::collection::vec(0usize..3, 6..40),
    ) {
        let n = xs.len().min(ys.len());
        let a: Vec<Option<usize>> = xs[..n].iter().map(|&l| Some(l)).collect();
        let b: Vec<Option<usize>> = ys[..n].iter().map(|&l| Some(l)).collect();
        if let Ok(k) = cohen_kappa(&a, &b) {
            prop_assert!(k <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn congestion_outcomes_bounded(seed in 0u64..100, sigma in 0.2f64..1.6) {
        let mut cfg = CongestionConfig::default();
        cfg.rounds = 60;
        cfg.seed = seed;
        cfg.demand_sigma = sigma;
        let sim = CongestionSim::new(cfg).unwrap();
        for policy in AllocationPolicy::ALL {
            let out = sim.run(policy);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&out.fairness), "{policy:?}");
            prop_assert!((0.0..=1.0 + 1e-9).contains(&out.utilization));
            prop_assert!((0.0..=1.0).contains(&out.starvation));
        }
    }
}

proptest! {
    #[test]
    fn louvain_partition_is_valid_and_nonnegative_q(seed in 0u64..200, n in 4usize..30, p in 0.1f64..0.8) {
        let mut rng = Rng::new(seed);
        let g = erdos_renyi(n, p, &mut rng).unwrap();
        prop_assume!(g.edge_count() > 0);
        let partition = humnet::graph::louvain(&g).unwrap();
        prop_assert_eq!(partition.membership.len(), n);
        let q = humnet::graph::modularity(&g, &partition).unwrap();
        // Louvain never does worse than the singleton partition baseline
        // it starts from, and modularity is bounded.
        prop_assert!((-0.5 - 1e-9..=1.0 + 1e-9).contains(&q));
        // Every community label is in range.
        let k = partition.community_count();
        prop_assert!(partition.membership.iter().all(|&c| c < k));
    }

    #[test]
    fn core_numbers_bounded_by_degree(seed in 0u64..200, n in 2usize..40, p in 0.05f64..0.7) {
        let mut rng = Rng::new(seed);
        let g = erdos_renyi(n, p, &mut rng).unwrap();
        let core = humnet::graph::core_numbers(&g);
        for v in 0..n {
            prop_assert!(core[v] <= g.degree(v));
        }
        // Max core number is at least min degree of the densest... weak but
        // useful bound: max core <= max degree.
        let max_core = core.iter().copied().max().unwrap_or(0);
        let max_deg = (0..n).map(|v| g.degree(v)).max().unwrap_or(0);
        prop_assert!(max_core <= max_deg);
    }

    #[test]
    fn interval_alpha_at_most_one(
        base in prop::collection::vec(0.0f64..5.0, 5..30),
        noise in prop::collection::vec(-1.0f64..1.0, 5..30),
    ) {
        let n = base.len().min(noise.len());
        let a: Vec<Option<f64>> = base[..n].iter().map(|&x| Some(x)).collect();
        let b: Vec<Option<f64>> = base[..n]
            .iter()
            .zip(&noise[..n])
            .map(|(&x, &e)| Some(x + e))
            .collect();
        if let Ok(alpha) = humnet::qual::krippendorff_alpha_interval(&[a, b]) {
            prop_assert!(alpha <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn growth_conserves_arrivals(seed in 0u64..100, rounds in 1u32..60, arrivals in 1usize..20) {
        let mut cfg = humnet::ixp::GrowthConfig::default();
        cfg.seed = seed;
        cfg.rounds = rounds;
        cfg.arrivals_per_round = arrivals;
        let initial: u32 = cfg.ixps.iter().map(|i| i.members).sum();
        let out = humnet::ixp::simulate_growth(&cfg).unwrap();
        let total: u32 = out.final_members.iter().sum();
        prop_assert_eq!(total, initial + rounds * arrivals as u32);
        prop_assert!((0.0..=1.0).contains(&out.top_share));
        prop_assert!((0.0..=1.0).contains(&out.south_joined_local));
    }

    #[test]
    fn economics_membership_bookkeeping(seed in 0u64..100, sigma in 0.2f64..1.5) {
        use humnet::community::{simulate_economics, DuesPolicy, EconomicsConfig};
        let mut cfg = EconomicsConfig::default();
        cfg.seed = seed;
        cfg.income_sigma = sigma;
        for policy in DuesPolicy::ALL {
            let out = simulate_economics(&cfg, policy).unwrap();
            prop_assert_eq!(
                out.remaining_members + out.dropped_for_affordability,
                cfg.households
            );
            prop_assert_eq!(out.balance_curve.len(), cfg.months as usize);
            if let Some(month) = out.insolvent_at {
                prop_assert!((month as usize) < out.balance_curve.len());
                prop_assert!(out.balance_curve[month as usize] < 0.0);
            }
        }
    }

    #[test]
    fn mesh_service_requires_up_state(seed in 0u64..100, nodes in 2usize..40) {
        use humnet::community::{MeshConfig, MeshNetwork, NodeState};
        let mut cfg = MeshConfig::default();
        cfg.nodes = nodes;
        cfg.gateways = 1;
        let mut rng = Rng::new(seed);
        let mut mesh = MeshNetwork::deploy(&cfg, &mut rng).unwrap();
        // Randomly fail some nodes.
        for v in 0..nodes {
            if rng.chance(0.3) {
                mesh.set_state(v, NodeState::Down).unwrap();
            }
        }
        let served = mesh.service_map();
        for v in 0..nodes {
            if served[v] {
                prop_assert_eq!(mesh.state(v).unwrap(), NodeState::Up);
            }
        }
        let frac = mesh.service_fraction();
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn diary_compliance_curve_bounded(seed in 0u64..100, probe in 0.0f64..1.0) {
        let mut cfg = humnet::qual::DiaryConfig::default();
        cfg.probe_rate = probe;
        let out = humnet::qual::simulate_diary(&cfg, seed).unwrap();
        for &c in &out.compliance_curve {
            prop_assert!((0.0..=1.0).contains(&c));
        }
        prop_assert!((0.0..=1.0).contains(&out.prompted_share()));
    }
}

/// Build a random but guaranteed-acyclic AS hierarchy: for i < j, j may buy
/// transit from i; peers sprinkled on top.
fn random_topology(seed: u64, n: usize) -> AsTopology {
    let mut rng = Rng::new(seed);
    let mut t = AsTopology::new();
    let region = RegionTag::new("X", false);
    for i in 0..n {
        t.add_as(&format!("AS{i}"), AsKind::Access, &region, 1.0);
    }
    for j in 1..n {
        // Every AS below the root buys from at least one earlier AS.
        let provider = rng.range(0, j);
        t.add_provider(j, provider).unwrap();
        if rng.chance(0.3) {
            let p2 = rng.range(0, j);
            let _ = t.add_provider(j, p2);
        }
    }
    for a in 0..n {
        for b in (a + 1)..n {
            // Keep relationships unambiguous: no peering between pairs that
            // already have a transit relationship (hybrid relationships
            // exist in reality but would make the hop classifier below
            // ambiguous).
            let related =
                t.providers_of(a).contains(&b) || t.providers_of(b).contains(&a);
            if !related && rng.chance(0.1) {
                let _ = t.add_peering(a, b, None);
            }
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The central routing invariant: every computed path is valley-free —
    /// zero or more customer→provider hops, at most one peer hop, then
    /// zero or more provider→customer hops — and uses only real links.
    #[test]
    fn routes_are_valley_free(seed in 0u64..300, n in 3usize..16) {
        let topology = random_topology(seed, n);
        let routes = RoutingTable::compute(&topology).unwrap();
        for src in 0..n {
            for dst in 0..n {
                let Ok(route) = routes.route(src, dst) else { continue };
                if src == dst {
                    prop_assert_eq!(route.kind, RouteKind::SelfRoute);
                    continue;
                }
                prop_assert_eq!(*route.path.first().unwrap(), src);
                prop_assert_eq!(*route.path.last().unwrap(), dst);
                // Classify each hop; check the up* peer? down* shape.
                #[derive(PartialEq, Clone, Copy, Debug)]
                enum Phase { Up, Peer, Down }
                let mut phase = Phase::Up;
                let mut peer_hops = 0;
                for w in route.path.windows(2) {
                    let (u, v) = (w[0], w[1]);
                    let up = topology.providers_of(u).contains(&v);
                    let down = topology.customers_of(u).contains(&v);
                    let peer = topology.peers_of(u).iter().any(|&(x, _)| x == v);
                    prop_assert!(up || down || peer, "hop {u}->{v} uses no link");
                    let hop = if up { Phase::Up } else if down { Phase::Down } else { Phase::Peer };
                    // Phase may only move forward: Up -> Peer -> Down.
                    match (phase, hop) {
                        (Phase::Up, _) => phase = hop,
                        (Phase::Peer, Phase::Peer) => prop_assert!(false, "two peer hops"),
                        (Phase::Peer, Phase::Down) => phase = Phase::Down,
                        (Phase::Peer, Phase::Up) => prop_assert!(false, "up after peer"),
                        (Phase::Down, Phase::Down) => {}
                        (Phase::Down, _) => prop_assert!(false, "{hop:?} after down"),
                    }
                    if hop == Phase::Peer {
                        peer_hops += 1;
                    }
                }
                prop_assert!(peer_hops <= 1);
                prop_assert_eq!(route.has_peer_hop, peer_hops == 1);
            }
        }
    }

    /// Connectivity sanity: with the construction above, AS 0 is a root
    /// provider, so every AS reaches every other through the hierarchy.
    #[test]
    fn hierarchy_provides_full_reachability(seed in 0u64..200, n in 3usize..14) {
        let topology = random_topology(seed, n);
        let routes = RoutingTable::compute(&topology).unwrap();
        for src in 0..n {
            for dst in 0..n {
                prop_assert!(routes.reachable(src, dst), "no route {src}->{dst}");
            }
        }
    }

    /// Differential oracle: the SoA engine (serial, parallel, sampled, and
    /// on-demand) selects routes identical to the retained seed
    /// implementation on random topologies.
    #[test]
    fn soa_routing_matches_reference(seed in 0u64..300, n in 3usize..16) {
        let topology = random_topology(seed, n);
        let soa = RoutingTable::compute(&topology).unwrap();
        let naive = humnet::ixp::routing::reference::ReferenceTable::compute(&topology).unwrap();
        let par = RoutingTable::compute_parallel(&topology, 4).unwrap();
        prop_assert_eq!(&par, &soa);
        let ft = topology.freeze();
        for src in 0..n {
            for dst in 0..n {
                let expected = naive.route(src, dst).ok();
                prop_assert_eq!(&soa.route(src, dst).ok(), &expected, "route {}->{}", src, dst);
                if (src + dst) % 5 == 0 {
                    let demand = RoutingTable::route_on_demand(&ft, src, dst).ok();
                    prop_assert_eq!(&demand, &expected, "on-demand {}->{}", src, dst);
                }
            }
        }
        // A sampled table agrees on its covered rows.
        let sample: Vec<usize> = (0..n).filter(|d| d % 2 == 0).collect();
        let sampled = RoutingTable::compute_for_destinations(&topology, &sample).unwrap();
        for src in 0..n {
            for &dst in &sample {
                prop_assert_eq!(sampled.route(src, dst).ok(), naive.route(src, dst).ok());
            }
        }
    }
}

// Chaos properties: any fault plan — any profile, seed and intensity —
// must leave every fault-capable experiment either succeeding with a
// valid (possibly degraded) result or failing with a typed error. Panics
// fail the test by construction.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_fault_plan_degrades_gracefully(
        profile_idx in 0usize..4,
        seed in 0u64..1_000_000,
        intensity in 0.0f64..3.0,
    ) {
        use humnet::core::experiments::ExperimentId;
        use humnet::resilience::{FaultPlan, FaultProfile};
        let plan = FaultPlan::new(FaultProfile::ALL[profile_idx], seed)
            .with_intensity(intensity);
        // The quick fault-capable experiments (T1/T3 are equivalent but
        // ~100x slower; their hooks are exercised in crate-level tests).
        for id in [ExperimentId::F1, ExperimentId::T2, ExperimentId::F4, ExperimentId::F5] {
            let run = id.run(&plan).expect("experiments degrade, not error");
            prop_assert!(!run.rendered.is_empty());
            if run.faults_injected > 0 {
                prop_assert!(plan.is_active(), "faults require an active plan");
            }
            // Same plan, same result: the fault schedule is part of the seed.
            let again = id.run(&plan).expect("rerun succeeds");
            prop_assert_eq!(&run, &again);
        }
    }

    #[test]
    fn congestion_invariants_hold_under_any_plan(
        profile_idx in 0usize..4,
        seed in 0u64..1_000_000,
        intensity in 0.0f64..4.0,
    ) {
        use humnet::resilience::{FaultPlan, FaultProfile, PlanHook};
        let plan = FaultPlan::new(FaultProfile::ALL[profile_idx], seed)
            .with_intensity(intensity);
        let sim = CongestionSim::new(CongestionConfig::default()).unwrap();
        let mut hook = PlanHook::new(plan);
        for out in sim.compare_with_faults(&mut hook) {
            prop_assert!(out.fairness.is_nan() || (0.0..=1.0 + 1e-9).contains(&out.fairness));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&out.utilization));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&out.starvation));
        }
    }
}
