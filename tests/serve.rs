//! Serve-daemon contracts, driving the real `experiments` binary:
//!
//! - A cache hit is byte-identical to the miss that populated it AND to
//!   what `experiments run --report-out` writes for the same tuple, and
//!   performs zero runner attempts (asserted via the daemon's telemetry).
//! - Under a tiny queue the daemon sheds excess load with `overloaded`
//!   (query exit code 3) instead of hanging, and serves again once
//!   drained.
//! - SIGTERM drains the daemon gracefully (exit 0).

use humnet::serve::{Request, ServeClient};
use humnet::telemetry::TelemetrySnapshot;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const EXE: &str = env!("CARGO_BIN_EXE_experiments");
const TIMEOUT: Duration = Duration::from_secs(120);

/// A unique scratch dir per test so parallel tests never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("humnet-serve-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(EXE)
        .args(args)
        .output()
        .expect("experiments binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Kills the daemon on drop so a failed assertion never leaks a process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Start `experiments serve` on a free port and wait for its ready file.
fn start_daemon(dir: &std::path::Path, extra: &[&str]) -> Daemon {
    let ready = dir.join("ready");
    // A restarted daemon reuses the path: never read a stale address.
    let _ = std::fs::remove_file(&ready);
    let cache = dir.join("cache");
    let child = Command::new(EXE)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--cache-dir",
            cache.to_str().unwrap(),
            "--ready-file",
            ready.to_str().unwrap(),
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let t0 = Instant::now();
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&ready) {
            let text = text.trim().to_owned();
            if !text.is_empty() {
                break text;
            }
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "daemon never wrote its ready file"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    Daemon { child, addr }
}

/// A fresh persistent connection to the daemon under test.
fn connect(addr: &str) -> ServeClient {
    ServeClient::connect(addr, TIMEOUT).expect("connect to daemon")
}

fn counters(addr: &str) -> BTreeMap<String, u64> {
    let resp = connect(addr).request(&Request::stats()).expect("stats query");
    assert_eq!(resp.status, "stats", "{resp:?}");
    let snap = TelemetrySnapshot::from_json(resp.stats.as_deref().unwrap()).unwrap();
    snap.metrics.counters.into_iter().collect()
}

/// Shut the daemon down over the wire and require a clean exit.
fn shutdown(mut daemon: Daemon) {
    let resp = connect(&daemon.addr)
        .request(&Request::shutdown())
        .expect("shutdown query");
    assert_eq!(resp.status, "ok", "{resp:?}");
    let status = daemon.child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit: {status:?}");
    // Already reaped; keep Drop from killing a reused pid.
    std::mem::forget(daemon);
}

#[test]
fn hit_is_byte_identical_to_miss_and_to_run_with_zero_runner_attempts() {
    let dir = scratch("identity");

    // The ground truth: what a plain `run` writes for the same tuple.
    let art_path = dir.join("run-artifact.json");
    let base = run(&[
        "run", "f1", "--report-only", "--seed", "9", "--fault-profile", "churn",
        "--report-out", art_path.to_str().unwrap(),
    ]);
    assert!(base.status.success(), "{}", stderr(&base));
    let expected = std::fs::read_to_string(&art_path).unwrap();

    let daemon = start_daemon(&dir, &[]);
    let req = Request::run("f1", 9, "churn", 1.0);

    // One persistent connection carries both the miss and the hit: the
    // daemon answers N requests per connection, in order.
    let mut client = connect(&daemon.addr);
    let miss = client.request(&req).unwrap();
    assert_eq!(miss.status, "miss", "{miss:?}");
    assert_eq!(
        miss.artifact.as_deref(),
        Some(expected.as_str()),
        "daemon miss must equal the `run --report-out` artifact byte-for-byte"
    );
    let attempts_after_miss = counters(&daemon.addr)["runner.attempts"];
    assert!(attempts_after_miss >= 1);

    let hit = client.request(&req).unwrap();
    assert_eq!(hit.status, "hit", "{hit:?}");
    assert_eq!(hit.artifact, miss.artifact, "hit must be byte-identical to its miss");
    assert_eq!(hit.metrics, miss.metrics);
    assert_eq!(hit.key, miss.key);

    let stats = counters(&daemon.addr);
    assert_eq!(
        stats["runner.attempts"], attempts_after_miss,
        "a hit performs zero runner attempts"
    );
    assert_eq!(stats["serve.cache_hit"], 1);
    assert_eq!(stats["serve.cache_miss"], 1);

    // The `query` subcommand sees the same bytes.
    let cli_path = dir.join("query-artifact.json");
    let addr = daemon.addr.clone();
    let out = run(&[
        "query", "f1", "--addr", &addr, "--seed", "9", "--fault-profile", "churn",
        "--intensity", "1.0", "--artifact-out", cli_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("query: hit"), "{}", stderr(&out));
    assert_eq!(std::fs::read_to_string(&cli_path).unwrap(), expected);

    shutdown(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiny_queue_sheds_with_exit_code_3_and_recovers() {
    let dir = scratch("overload");
    let daemon = start_daemon(
        &dir,
        &["--queue-depth", "1", "--concurrency", "1", "--hold-ms", "900"],
    );

    // Whether a burst actually collides depends on how fast the four
    // client processes spawn; under heavy machine load they can stagger
    // past the hold window and all get admitted. Shedding is timing-based
    // by design, so retry the burst (fresh seeds each time — every
    // request stays a miss) until at least one collision happens.
    let mut total_shed = 0usize;
    let mut all_codes = Vec::new();
    for burst in 0..3u64 {
        let clients: Vec<_> = (0..4u64)
            .map(|i| {
                let addr = daemon.addr.clone();
                let seed = (burst * 10 + i).to_string();
                std::thread::spawn(move || {
                    run(&["query", "f1", "--addr", &addr, "--seed", &seed])
                        .status
                        .code()
                        .expect("query exit code")
                })
            })
            .collect();
        let codes: Vec<i32> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        let shed = codes.iter().filter(|&&c| c == 3).count();
        let ok = codes.iter().filter(|&&c| c == 0).count();
        // How many of the burst land before the worker dequeues the
        // first is a race under machine load; the hard guarantee is
        // that at least one is admitted and the rest answer promptly.
        assert!(ok >= 1, "queue+worker admit at least one: {codes:?}");
        assert_eq!(shed + ok, 4, "every query gets a definite exit: {codes:?}");
        total_shed += shed;
        all_codes.push(codes);
        if shed >= 1 {
            break;
        }
    }
    assert!(total_shed >= 1, "no query was ever shed: {all_codes:?}");

    // Drained daemon serves again, and counted every shed.
    let after = connect(&daemon.addr)
        .request(&Request::run("f1", 99, "none", 1.0))
        .unwrap();
    assert_eq!(after.status, "miss", "{after:?}");
    let stats = counters(&daemon.addr);
    assert_eq!(stats["serve.shed"], total_shed as u64);

    shutdown(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn sigterm_drains_the_daemon_gracefully() {
    let dir = scratch("sigterm");
    let mut daemon = start_daemon(&dir, &[]);
    let miss = connect(&daemon.addr)
        .request(&Request::run("f1", 3, "none", 1.0))
        .unwrap();
    assert_eq!(miss.status, "miss");

    let kill = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let status = daemon.child.wait().expect("daemon exits");
    assert!(status.success(), "SIGTERM exit: {status:?}");

    // The flushed cache serves the entry to a fresh daemon as a hit.
    std::mem::forget(daemon);
    let daemon2 = start_daemon(&dir, &[]);
    let hit = connect(&daemon2.addr)
        .request(&Request::run("f1", 3, "none", 1.0))
        .unwrap();
    assert_eq!(hit.status, "hit", "{hit:?}");
    assert_eq!(hit.artifact, miss.artifact);
    shutdown(daemon2);
    let _ = std::fs::remove_dir_all(&dir);
}
