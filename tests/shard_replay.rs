//! Sharding and replay contracts, end to end:
//!
//! - `TelemetrySnapshot::merge` is associative and (for the metrics half)
//!   order-insensitive, so any shard count and any fold order yields the
//!   same run-level view — checked property-style over randomized shard
//!   splits of randomized observation streams.
//! - A K-shard supervised run over the real experiment suite produces a
//!   merged canonical journal, report, and outputs byte-identical to the
//!   1-shard run of the same seed.
//! - A captured chaos journal replays with zero divergences, and a
//!   recorded fault schedule reproduces the run it was extracted from.

use humnet::core::experiments::ExperimentId;
use humnet::resilience::{
    replay, ExperimentSpec, FaultProfile, JobError, JobOutput, RecordedFault, RecordedFaults,
    ShardPlan, Supervisor,
};
use humnet::telemetry::{Telemetry, TelemetrySnapshot};
use proptest::prelude::*;
use std::time::Duration;

// ---------------------------------------------------------------------
// Merge algebra
// ---------------------------------------------------------------------

/// Build a snapshot from a stream of (value) observations plus a counter,
/// the way a shard worker would.
fn snapshot_of(values: &[u64]) -> TelemetrySnapshot {
    let tel = Telemetry::new();
    for &v in values {
        tel.observe("job.latency_ms", v);
        tel.counter("job.calls", 1);
    }
    tel.snapshot()
}

/// Merge a list of snapshots left to right into one.
fn fold(snaps: &[TelemetrySnapshot]) -> TelemetrySnapshot {
    let mut acc = TelemetrySnapshot::default();
    for s in snaps {
        acc.merge(s, "");
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting one observation stream across any shard layout and
    /// merging the per-shard snapshots — in shard order or reversed —
    /// reconstructs the unsharded metrics exactly: counters, histogram
    /// counts/sums/maxima, buckets, and therefore every quantile.
    #[test]
    fn snapshot_merge_is_shard_split_invariant(
        values in prop::collection::vec(0u64..100_000, 1..120),
        shards in 1u32..8,
    ) {
        let whole = snapshot_of(&values);
        let plan = ShardPlan::new(shards);
        let parts: Vec<TelemetrySnapshot> = plan
            .ranges(values.len())
            .into_iter()
            .map(|r| snapshot_of(&values[r]))
            .collect();

        let merged = fold(&parts);
        prop_assert_eq!(&merged.metrics, &whole.metrics);

        // Order-insensitive for the metrics half: fold the shards in
        // reverse and the histograms (hence all quantile buckets) agree.
        let reversed: Vec<TelemetrySnapshot> = parts.iter().rev().cloned().collect();
        let merged_rev = fold(&reversed);
        prop_assert_eq!(&merged_rev.metrics, &whole.metrics);
        let h = &merged.metrics.histograms["job.latency_ms"];
        let hr = &merged_rev.metrics.histograms["job.latency_ms"];
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(h.quantile(q), hr.quantile(q));
        }
    }

    /// merge is associative: (a + b) + c == a + (b + c), snapshots whole
    /// (metrics AND events — event order is fixed by the fold sequence,
    /// which both sides share).
    #[test]
    fn snapshot_merge_is_associative(
        a in prop::collection::vec(0u64..10_000, 0..40),
        b in prop::collection::vec(0u64..10_000, 0..40),
        c in prop::collection::vec(0u64..10_000, 0..40),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb, "");
        left.merge(&sc, "");

        let mut right_tail = sb.clone();
        right_tail.merge(&sc, "");
        let mut right = sa.clone();
        right.merge(&right_tail, "");

        prop_assert_eq!(left, right);
    }
}

// ---------------------------------------------------------------------
// End-to-end shard invariance over the real experiment suite
// ---------------------------------------------------------------------

/// The fast cross-family fault-capable subset (same as determinism.rs).
fn specs() -> Vec<ExperimentSpec> {
    [ExperimentId::F1, ExperimentId::T2, ExperimentId::F4, ExperimentId::F5]
        .into_iter()
        .map(spec_for)
        .collect()
}

fn spec_for(id: ExperimentId) -> ExperimentSpec {
    ExperimentSpec::new(id.code(), id.title(), id.family(), move |plan, tel| {
        id.run_instrumented(plan, tel)
            .map(|r| JobOutput {
                rendered: r.rendered,
                faults_injected: r.faults_injected,
            })
            .map_err(|e| Box::new(e) as JobError)
    })
}

fn supervisor(shards: u32) -> Supervisor {
    Supervisor::builder()
        .retries(2)
        .deadline(Duration::from_secs(30))
        .fault_profile(FaultProfile::Chaos)
        .seed(2025)
        .shards(shards)
        .build()
}

#[test]
fn four_shard_run_matches_single_shard_byte_for_byte() {
    let single = supervisor(1).run(&specs());
    let sharded = supervisor(4).run(&specs());

    // The acceptance criterion: merged canonical journal is identical.
    assert_eq!(
        single.telemetry.canonical_events(),
        sharded.telemetry.canonical_events()
    );
    assert_eq!(single.report.canonical(), sharded.report.canonical());
    assert_eq!(single.outputs, sharded.outputs);
    assert!(single.report.total_faults() > 0, "chaos must inject");

    // Shard bookkeeping exists only on the sharded side and never leaks
    // into the canonical view.
    assert_eq!(sharded.telemetry.metrics.counters["runner.shards"], 4);
    assert!(!single.telemetry.metrics.counters.contains_key("runner.shards"));
    assert!(sharded.telemetry.events.iter().any(|e| e.shard.is_some()));
    assert!(single.telemetry.events.iter().all(|e| e.shard.is_none()));
}

// ---------------------------------------------------------------------
// Replay round-trips
// ---------------------------------------------------------------------

fn factory(code: &str) -> Option<ExperimentSpec> {
    ExperimentId::parse(code).map(spec_for)
}

#[test]
fn captured_chaos_journal_replays_with_zero_divergences() {
    let run = supervisor(1).run(&specs());
    let report = replay::replay(&run.telemetry.events, &factory).expect("replayable journal");
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.exit_code(), 0);
    assert_eq!(report.captured_events, report.replayed_events);
    assert_eq!(report.experiments, vec!["f1", "t2", "f4", "f5"]);
    // The replayed run regenerates the same rendered outputs.
    assert_eq!(report.run.outputs, run.outputs);
}

#[test]
fn sharded_capture_replays_cleanly_on_one_shard() {
    // Journals serialize the merged (shard, seq)-ordered stream, so a
    // 4-shard capture must replay cleanly through the 1-shard engine.
    let run = supervisor(4).run(&specs());
    let report = replay::replay(&run.telemetry.events, &factory).expect("replayable journal");
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn recorded_fault_schedule_reproduces_the_run() {
    // Extract the fault schedule for one experiment from a captured
    // journal and drive the experiment from the recording instead of a
    // live plan: outputs must match the original attempt exactly.
    let run = supervisor(1).run(&specs());
    let spec = replay::reconstruct(&run.telemetry.events).expect("reconstructible journal");
    let schedule: &[RecordedFault] = spec.faults.get("f5").map(Vec::as_slice).unwrap_or(&[]);
    assert!(!schedule.is_empty(), "chaos at seed 2025 faults f5");

    let mut hook = RecordedFaults::new(schedule);
    let replayed = ExperimentId::F5
        .run_hooked(&mut hook, &Telemetry::disabled())
        .expect("f5 runs");
    assert_eq!(Some(&replayed.rendered), run.outputs.get("f5"));
    assert_eq!(
        replayed.faults_injected,
        run.report
            .experiments
            .iter()
            .find(|e| e.code == "f5")
            .unwrap()
            .faults_injected
    );
}
