//! Work-stealing schedule contracts, end to end:
//!
//! - A steal-scheduled K-worker run over the real experiment suite is
//!   byte-identical — canonical journal, canonical report, outputs — to
//!   the static 1-shard run of the same seed (the PR acceptance
//!   criterion), and its capture replays cleanly.
//! - Property-style: steal == static over random spec lists, seeds, and
//!   worker counts.
//! - Edge cases: more workers than jobs, zero shards as a typed error,
//!   and a timed-out job not stalling the rest of the steal run.

use humnet::core::experiments::ExperimentId;
use humnet::resilience::{
    replay, ExperimentSpec, FaultProfile, JobError, JobOutput, Schedule, ShardPlan,
    ShardPlanError, Supervisor,
};
use humnet::telemetry::Event;
use proptest::prelude::*;
use std::time::{Duration, Instant};

fn spec_for(id: ExperimentId) -> ExperimentSpec {
    ExperimentSpec::new(id.code(), id.title(), id.family(), move |plan, tel| {
        id.run_instrumented(plan, tel)
            .map(|r| JobOutput {
                rendered: r.rendered,
                faults_injected: r.faults_injected,
            })
            .map_err(|e| Box::new(e) as JobError)
    })
}

/// The fast cross-family fault-capable subset (same as shard_replay.rs).
fn suite() -> Vec<ExperimentSpec> {
    [ExperimentId::F1, ExperimentId::T2, ExperimentId::F4, ExperimentId::F5]
        .into_iter()
        .map(spec_for)
        .collect()
}

fn supervisor(shards: u32, schedule: Schedule) -> Supervisor {
    Supervisor::builder()
        .retries(2)
        .deadline(Duration::from_secs(30))
        .fault_profile(FaultProfile::Chaos)
        .seed(2025)
        .shards(shards)
        .schedule(schedule)
        .build()
}

#[test]
fn steal_run_matches_single_shard_byte_for_byte() {
    let single = supervisor(1, Schedule::Static).run(&suite());
    let stolen = supervisor(4, Schedule::Steal).run(&suite());

    assert_eq!(
        single.telemetry.canonical_events(),
        stolen.telemetry.canonical_events()
    );
    assert_eq!(single.report.canonical(), stolen.report.canonical());
    assert_eq!(single.outputs, stolen.outputs);
    assert!(single.report.total_faults() > 0, "chaos must inject");

    // Steal bookkeeping exists only on the steal side and never leaks
    // into the canonical view.
    assert_eq!(stolen.telemetry.metrics.counters["runner.steal.workers"], 4);
    assert!(!single
        .telemetry
        .metrics
        .counters
        .contains_key("runner.steal.workers"));
    assert!(stolen.telemetry.events.iter().any(|e| e.shard.is_some()));
}

#[test]
fn steal_capture_replays_cleanly_on_one_shard() {
    let run = supervisor(4, Schedule::Steal).run(&suite());
    let factory = |code: &str| ExperimentId::parse(code).map(spec_for);
    let report = replay::replay(&run.telemetry.events, &factory).expect("replayable journal");
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.experiments, vec!["f1", "t2", "f4", "f5"]);
}

// ---------------------------------------------------------------------
// Property: steal == static over random spec lists and seeds
// ---------------------------------------------------------------------

/// Deterministic always-succeeding jobs (so the breaker — whose trip
/// order is legitimately schedule-dependent under persistent failures —
/// never engages) with per-spec telemetry that makes reordering visible.
fn synthetic_specs(n: usize, events_per_job: u64) -> Vec<ExperimentSpec> {
    (0..n)
        .map(|i| {
            let code = format!("syn{i}");
            let owned = code.clone();
            ExperimentSpec::new(&code, format!("synthetic {i}"), "bench", move |plan, tel| {
                let faults = (0..32)
                    .filter(|&s| {
                        plan.draw(s, humnet::resilience::FaultKind::LinkOutage).is_some()
                    })
                    .count() as u64;
                for e in 0..events_per_job {
                    tel.event(Event::new("milestone", format!("{owned} step {e}")).with_step(e));
                }
                tel.counter("job.calls", 1);
                Ok::<JobOutput, JobError>(JobOutput {
                    rendered: format!("{owned}: faults={faults}"),
                    faults_injected: faults,
                })
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Canonical journal, canonical report, and outputs of a steal run
    /// equal the static 1-shard run for any spec count, seed, and worker
    /// count — the invariance guarantee the post-sort provides.
    #[test]
    fn steal_output_equals_static_output(
        jobs in 1usize..14,
        events_per_job in 0u64..4,
        seed in 0u64..1_000_000,
        workers in 1u32..8,
    ) {
        let specs = synthetic_specs(jobs, events_per_job);
        let config = humnet::resilience::RunnerConfig {
            profile: FaultProfile::Chaos,
            seed,
            deadline: Duration::from_secs(10),
            ..Default::default()
        };
        let single = Supervisor::builder().config(config).build().run(&specs);
        let stolen = Supervisor::builder()
            .config(config)
            .shards(workers)
            .schedule(Schedule::Steal)
            .build()
            .run(&specs);
        prop_assert_eq!(
            single.telemetry.canonical_events(),
            stolen.telemetry.canonical_events()
        );
        prop_assert_eq!(single.report.canonical(), stolen.report.canonical());
        prop_assert_eq!(&single.outputs, &stolen.outputs);
    }
}

// ---------------------------------------------------------------------
// Edge cases
// ---------------------------------------------------------------------

#[test]
fn more_workers_than_jobs_is_fine_under_steal() {
    let specs = synthetic_specs(2, 1);
    let run = Supervisor::builder()
        .seed(9)
        .shards(8)
        .schedule(Schedule::Steal)
        .build()
        .run(&specs);
    assert_eq!(run.report.experiments.len(), 2);
    assert_eq!(run.report.exit_code(), 0);
    // The runtime clamps to one worker per job.
    assert_eq!(run.telemetry.metrics.counters["runner.steal.workers"], 2);
}

#[test]
fn zero_shards_is_a_typed_error_not_a_panic() {
    assert_eq!(ShardPlan::try_new(0), Err(ShardPlanError::ZeroShards));
    assert!(ShardPlan::try_new(0).unwrap_err().to_string().contains("at least one"));
    assert_eq!(ShardPlan::try_new(3).map(|p| p.shards()), Ok(3));
    // The clamping constructor keeps its lenient contract.
    assert_eq!(ShardPlan::new(0).shards(), 1);
}

#[test]
fn steal_runs_empty_spec_lists() {
    let run = Supervisor::builder()
        .schedule(Schedule::Steal)
        .shards(4)
        .build()
        .run(&[]);
    assert!(run.report.experiments.is_empty());
    assert_eq!(run.telemetry.events.first().unwrap().kind, "run-start");
    assert_eq!(run.telemetry.events.last().unwrap().kind, "run-end");
}

#[test]
fn a_timed_out_job_does_not_stall_the_steal_run() {
    let mut specs = synthetic_specs(5, 0);
    specs.insert(
        0,
        ExperimentSpec::new("stuck", "sleeps past the deadline", "slow", |_plan, _tel| {
            std::thread::sleep(Duration::from_secs(5));
            Ok::<JobOutput, JobError>(JobOutput {
                rendered: String::new(),
                faults_injected: 0,
            })
        }),
    );
    let started = Instant::now();
    let run = Supervisor::builder()
        .retries(0)
        .deadline(Duration::from_millis(50))
        .shards(3)
        .schedule(Schedule::Steal)
        .build()
        .run(&specs);
    // The watchdog freed the run long before the stuck job's sleep ends.
    assert!(started.elapsed() < Duration::from_secs(4), "watchdog fired");
    let stuck = run.report.experiments.iter().find(|e| e.code == "stuck").unwrap();
    assert_eq!(stuck.status.label(), "timed-out");
    let ok = run
        .report
        .experiments
        .iter()
        .filter(|e| e.status.label() == "ok" || e.status.label() == "degraded")
        .count();
    assert_eq!(ok, 5, "every other job completed");
}
