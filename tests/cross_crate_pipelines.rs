//! Integration tests exercising realistic multi-crate pipelines.

use humnet::corpus::{CorpusConfig, MethodTag, VenueKind};
use humnet::graph::{connected_components, label_propagation, modularity, pagerank};
use humnet::qual::{krippendorff_alpha, SimulatedStudy, StudyConfig};
use humnet::stats::{chi_square_independence, mann_whitney_u, pearson, Rng};
use humnet::survey::detect_positionality;
use humnet::text::{extract_keywords, NaiveBayes, TfIdf};

fn corpus() -> humnet::corpus::Corpus {
    let mut cfg = CorpusConfig::default();
    cfg.years = 6;
    for v in cfg.venues.iter_mut() {
        v.papers_per_year = 15;
    }
    cfg.author_pool = 200;
    cfg.generate(99).unwrap()
}

#[test]
fn corpus_text_pipeline_classifies_venue_culture() {
    // Train a naive-Bayes classifier to tell human-centered abstracts from
    // systems abstracts using the generated corpus itself.
    let c = corpus();
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, p) in c.papers.iter().enumerate() {
        let label = if p.is_human_centered() { "human" } else { "technical" };
        let tokens = humnet::text::tokenize(&p.abstract_text);
        if i % 5 == 0 {
            test.push((tokens, label.to_string()));
        } else {
            train.push((tokens, label.to_string()));
        }
    }
    let nb = NaiveBayes::fit(&train, 1.0).unwrap();
    let acc = nb.accuracy(&test).unwrap();
    assert!(acc > 0.85, "held-out accuracy = {acc}");
}

#[test]
fn corpus_statistics_pipeline_detects_method_venue_association() {
    // Chi-square independence: venue kind (networking vs not) × human
    // methods (yes/no) must be strongly associated.
    let c = corpus();
    let mut table = vec![vec![0.0; 2]; 2];
    for p in &c.papers {
        let networking = c.venues[p.venue].kind.is_networking();
        let human = p.is_human_centered();
        table[usize::from(networking)][usize::from(human)] += 1.0;
    }
    let result = chi_square_independence(&table).unwrap();
    assert!(result.p_value < 1e-10, "p = {}", result.p_value);
}

#[test]
fn citation_graph_shows_topic_homophily() {
    // The generator doubles citation weight toward same-topic papers; the
    // graph should therefore show clear topic homophily relative to the
    // null expectation Σ p_t² from the topic mix.
    let c = corpus();
    let mut same = 0usize;
    let mut total = 0usize;
    for p in &c.papers {
        for &cited in &p.citations {
            total += 1;
            if c.papers[cited].topic == p.topic {
                same += 1;
            }
        }
    }
    assert!(total > 100, "corpus should have plenty of citations");
    let observed = same as f64 / total as f64;
    // Null: probability two random papers share a topic.
    let mut counts = std::collections::HashMap::new();
    for p in &c.papers {
        *counts.entry(p.topic).or_insert(0usize) += 1;
    }
    let n = c.papers.len() as f64;
    let null: f64 = counts.values().map(|&k| (k as f64 / n).powi(2)).sum();
    assert!(
        observed > null * 1.3,
        "same-topic citation share {observed:.3} should exceed null {null:.3}"
    );
    // And the undirected projection still clusters: ensure the machinery
    // runs end to end and yields a valid (possibly coarse) partition.
    let mut g = humnet::graph::Graph::undirected(c.papers.len());
    for p in &c.papers {
        for &cited in &p.citations {
            if !g.has_edge(p.id, cited) {
                g.add_edge(p.id, cited).unwrap();
            }
        }
    }
    let mut rng = Rng::new(5);
    let partition = label_propagation(&g, &mut rng, 50).unwrap();
    assert_eq!(partition.membership.len(), c.papers.len());
    let q = modularity(&g, &partition).unwrap();
    assert!(q >= 0.0, "q = {q}");
    let labels = connected_components(&g);
    assert!(!labels.is_empty());
}

#[test]
fn pagerank_influence_correlates_with_citations() {
    let c = corpus();
    let g = humnet::corpus::citation_graph(&c);
    let pr = pagerank(&g, 0.85, 1e-10, 100).unwrap();
    let cites: Vec<f64> = c.citation_counts().iter().map(|&x| x as f64).collect();
    let r = pearson(&pr, &cites).unwrap();
    assert!(r > 0.7, "pagerank–citation correlation = {r}");
}

#[test]
fn tfidf_retrieval_finds_same_topic_papers() {
    let c = corpus();
    let docs: Vec<Vec<String>> = c
        .papers
        .iter()
        .map(|p| humnet::text::tokenize(&p.abstract_text))
        .collect();
    let model = TfIdf::fit(&docs).unwrap();
    // Query with a community-networks paper; the best other match should
    // more often than not share its topic.
    let query_idx = c
        .papers
        .iter()
        .position(|p| p.topic == humnet::corpus::Topic::CommunityNetworks)
        .expect("corpus has community papers");
    let qv = model.transform(&docs[query_idx]);
    let mut best: Option<(usize, f64)> = None;
    for (i, d) in docs.iter().enumerate() {
        if i == query_idx {
            continue;
        }
        let sim = humnet::text::cosine_similarity(&qv, &model.transform(d));
        if best.map(|(_, s)| sim > s).unwrap_or(true) {
            best = Some((i, sim));
        }
    }
    let (best_idx, score) = best.unwrap();
    assert!(score > 0.2, "best similarity = {score}");
    assert_eq!(
        c.papers[best_idx].topic,
        humnet::corpus::Topic::CommunityNetworks,
        "nearest neighbour should share the topic"
    );
}

#[test]
fn keywords_of_positionality_papers_mention_methods() {
    let c = corpus();
    let blob: String = c
        .papers
        .iter()
        .filter(|p| p.methods.contains(&MethodTag::Ethnography))
        .map(|p| p.abstract_text.clone())
        .collect::<Vec<_>>()
        .join(" ");
    let kws = extract_keywords(&blob, 20);
    assert!(
        kws.iter().any(|k| k.phrase.contains("ethnographic")),
        "keywords: {:?}",
        kws.iter().map(|k| &k.phrase).collect::<Vec<_>>()
    );
}

#[test]
fn qual_reliability_feeds_stats_tests() {
    // Coding rounds improve; a Mann–Whitney test across early vs late
    // per-pair agreements should notice.
    let mut study = SimulatedStudy::new(StudyConfig::default(), 11).unwrap();
    let early = study.code_round(0);
    let late = study.code_round(6);
    let a_early = krippendorff_alpha(&early).unwrap();
    let a_late = krippendorff_alpha(&late).unwrap();
    assert!(a_late > a_early);
    // Per-unit agreement indicator vectors across coders (1 = all agree).
    let agreement = |labels: &Vec<Vec<Option<usize>>>| -> Vec<f64> {
        (0..labels[0].len())
            .map(|u| {
                let vals: Vec<usize> = labels.iter().filter_map(|l| l[u]).collect();
                if vals.len() < 2 {
                    return 0.0;
                }
                f64::from(vals.windows(2).all(|w| w[0] == w[1]))
            })
            .collect()
    };
    let result = mann_whitney_u(&agreement(&early), &agreement(&late)).unwrap();
    assert!(result.p_value < 0.01, "p = {}", result.p_value);
}

#[test]
fn detector_and_generator_stay_in_sync() {
    // Contract test: every abstract the generator tags with Positionality
    // must trip the survey detector (the audit pipelines rely on this).
    let c = corpus();
    for p in &c.papers {
        let tagged = p.has_positionality();
        let detected = detect_positionality(&p.abstract_text).is_some();
        assert_eq!(tagged, detected, "paper {} out of sync", p.id);
    }
}

#[test]
fn venue_kind_partition_is_total() {
    let c = corpus();
    let by_kind: usize = VenueKind::ALL
        .iter()
        .map(|&k| c.papers_in_kind(k).len())
        .sum();
    assert_eq!(by_kind, c.papers.len());
}
