//! The telemetry journal contract: a supervised run's event stream is
//! seed-stable (same seed => identical event sequence, timings excluded),
//! and the journal survives a JSONL round-trip through the vendored
//! serde_json bit-for-bit.

use humnet::core::experiments::ExperimentId;
use humnet::resilience::{ExperimentSpec, FaultProfile, JobError, JobOutput, Supervisor};
use humnet::telemetry::journal::{from_jsonl, to_jsonl};
use std::time::Duration;

/// A cross-family subset of real experiments plus one always-failing
/// synthetic family, so the journal exercises fault, retry, breaker-open,
/// and breaker-skip events in a single fast run.
fn specs() -> Vec<ExperimentSpec> {
    let mut specs: Vec<ExperimentSpec> = [ExperimentId::F1, ExperimentId::T2, ExperimentId::F5]
        .into_iter()
        .map(|id| {
            ExperimentSpec::new(id.code(), id.title(), id.family(), move |plan, tel| {
                id.run_instrumented(plan, tel)
                    .map(|r| JobOutput {
                        rendered: r.rendered,
                        faults_injected: r.faults_injected,
                    })
                    .map_err(|e| Box::new(e) as JobError)
            })
        })
        .collect();
    for code in ["syn1", "syn2"] {
        specs.push(ExperimentSpec::new(code, "always fails", "synthetic", |_plan, _tel| {
            Err("synthetic failure".into())
        }));
    }
    specs
}

fn supervisor(seed: u64) -> Supervisor {
    Supervisor::builder()
        .retries(1)
        .deadline(Duration::from_secs(30))
        .fault_profile(FaultProfile::Chaos)
        .seed(seed)
        .breaker_threshold(1)
        .build()
}

#[test]
fn same_seed_runs_produce_identical_event_sequences() {
    let a = supervisor(99).run(&specs());
    let b = supervisor(99).run(&specs());
    assert!(!a.telemetry.events.is_empty());
    assert_eq!(a.telemetry.events.len(), b.telemetry.events.len());
    assert_eq!(a.telemetry.canonical_events(), b.telemetry.canonical_events());

    // A different seed draws a different fault schedule.
    let c = supervisor(100).run(&specs());
    assert_ne!(a.telemetry.canonical_events(), c.telemetry.canonical_events());
}

#[test]
fn journal_covers_faults_retries_and_breaker_trips() {
    let run = supervisor(99).run(&specs());
    let kinds: Vec<&str> = run.telemetry.events.iter().map(|e| e.kind.as_str()).collect();
    for expected in ["run-start", "experiment-start", "fault", "milestone", "retry", "attempt-error", "breaker-open", "breaker-skip", "experiment-end", "run-end"] {
        assert!(kinds.contains(&expected), "missing event kind {expected:?} in {kinds:?}");
    }
    // Sequence numbers are dense and ordered.
    for (i, e) in run.telemetry.events.iter().enumerate() {
        assert_eq!(e.seq, i as u64);
    }
    // Worker-side events carry their experiment scope.
    assert!(run
        .telemetry
        .events
        .iter()
        .any(|e| e.kind == "fault" && !e.experiment.is_empty()));
}

#[test]
fn journal_round_trips_through_jsonl() {
    let run = supervisor(7).run(&specs());
    let jsonl = to_jsonl(&run.telemetry.events).expect("serialize");
    assert!(!jsonl.trim().is_empty());
    assert_eq!(jsonl.trim().lines().count(), run.telemetry.events.len());
    let reread = from_jsonl(&jsonl).expect("parse");
    assert_eq!(reread, run.telemetry.events);
    // And the full snapshot serializer agrees with the standalone one.
    assert_eq!(run.telemetry.to_jsonl().expect("snapshot jsonl"), jsonl);
}
