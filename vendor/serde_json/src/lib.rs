//! Offline stand-in for `serde_json`.
//!
//! Provides `to_string` / `from_str` / `json!` / [`Value`] over the value
//! model defined in the vendored `serde` crate. The parser is a
//! recursive-descent JSON reader; the printer lives on `Value`'s `Display`
//! impl in `serde` (compact form, sorted object keys via `BTreeMap`).

use std::fmt;

pub use serde::{Map, Value};

/// JSON parse/serialize error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_string())
}

/// Serialize a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, x) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                pretty(x, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                out.push_str(&Value::Str(k.clone()).to_string());
                out.push_str(": ");
                pretty(x, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Parse a JSON string into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Construct a [`Value`] from any serializable expression.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($e:expr) => {
        ::serde::Serialize::to_value(&$e)
    };
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse_value(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_at(b: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => {
            expect_lit(b, pos, "null")?;
            Ok(Value::Null)
        }
        Some(b't') => {
            expect_lit(b, pos, "true")?;
            Ok(Value::Bool(true))
        }
        Some(b'f') => {
            expect_lit(b, pos, "false")?;
            Ok(Value::Bool(false))
        }
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(arr));
            }
            loop {
                arr.push(parse_at(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(arr));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}", pos = *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected `:` at byte {pos}", pos = *pos)));
                }
                *pos += 1;
                let val = parse_at(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}", pos = *pos))),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(Error::new(format!(
            "unexpected character `{}` at byte {pos}",
            *c as char,
            pos = *pos
        ))),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<()> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}", pos = *pos)))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if b.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("number slice is ASCII");
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::U64(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::I64(i));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}", pos = *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        // Surrogate pairs: a high surrogate must be followed
                        // by `\uXXXX` with a low surrogate.
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 3)?;
                                *pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err(Error::new("unpaired surrogate"));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(cp)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("non-empty remainder");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32> {
    let slice = b
        .get(at..at + 4)
        .ok_or_else(|| Error::new("truncated unicode escape"))?;
    let s = std::str::from_utf8(slice).map_err(|_| Error::new("invalid unicode escape"))?;
    u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid unicode escape"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("42").unwrap(), Value::U64(42));
        assert_eq!(parse_value("-3").unwrap(), Value::I64(-3));
        assert_eq!(parse_value("1.5e2").unwrap(), Value::F64(150.0));
        assert_eq!(parse_value("\"hi\\n\"").unwrap(), Value::Str("hi\n".into()));
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(
            parse_value("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Value::Str("\u{e9}\u{1F600}".into())
        );
    }

    #[test]
    fn round_trips_nested() {
        let src = r#"{"a":[1,2.5,"x"],"b":{"c":null,"d":true}}"#;
        let v = parse_value(src).unwrap();
        assert_eq!(v.to_string(), src);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
    }
}
