//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! value-model traits (see `vendor/serde`). Because neither `syn` nor
//! `quote` is available offline, parsing is a small hand-rolled token
//! scanner and code generation goes through format strings parsed back
//! into a `TokenStream`.
//!
//! Supported input shapes — exactly what this workspace uses:
//! * structs with named fields (and unit structs),
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   matching real serde's default representation).
//!
//! Not supported (panics with a clear message): generics, tuple structs,
//! `#[serde(...)]` attributes.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

enum Body {
    /// Named-field struct (possibly empty) or unit struct.
    Struct(Vec<String>),
    Enum(Vec<(String, VariantShape)>),
}

struct Parsed {
    name: String,
    body: Body,
}

fn parse_input(input: TokenStream) -> Parsed {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);

    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stand-in: generic type `{name}` is not supported");
        }
    }

    match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Parsed {
                name,
                body: Body::Struct(parse_named_fields(g)),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Parsed {
                name,
                body: Body::Struct(Vec::new()),
            },
            _ => panic!("serde_derive stand-in: tuple struct `{name}` is not supported"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Parsed {
                name,
                body: Body::Enum(parse_variants(g)),
            },
            other => panic!("serde_derive: expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    }
}

/// Skip `#[...]` attributes (doc comments arrive as `#[doc = "..."]`).
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    loop {
        match (toks.get(*i), toks.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(_))) if p.as_char() == '#' => {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parse `{ a: T, b: U<V, W>, ... }` into field names. Type tokens are
/// consumed tracking angle-bracket depth so commas inside generics don't
/// split fields; nested `{}`/`()`/`[]` arrive pre-grouped as single trees.
fn parse_named_fields(g: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        fields.push(name);
        i += 1;
        let mut depth = 0i64;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(g: &Group) -> Vec<(String, VariantShape)> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(tuple_arity(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g))
            }
            _ => VariantShape::Unit,
        };
        variants.push((name, shape));
        // Consume through the trailing comma (also skips `= discriminant`).
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

/// Number of fields in a tuple variant: top-level comma-separated
/// non-empty segments inside the parens.
fn tuple_arity(g: &Group) -> usize {
    let mut depth = 0i64;
    let mut segments = 0usize;
    let mut segment_has_tokens = false;
    for t in g.stream() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if segment_has_tokens {
                        segments += 1;
                    }
                    segment_has_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        segments += 1;
    }
    segments
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.body {
        Body::Struct(fields) => {
            let mut s = String::from("let mut __map = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__map.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__map)");
            s
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => {{\n\
                         let mut __map = ::serde::Map::new();\n\
                         __map.insert(\"{v}\".to_string(), ::serde::Serialize::to_value(__f0));\n\
                         ::serde::Value::Object(__map)\n}}\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binders}) => {{\n\
                             let mut __map = ::serde::Map::new();\n\
                             __map.insert(\"{v}\".to_string(), ::serde::Value::Array(vec![{elems}]));\n\
                             ::serde::Value::Object(__map)\n}}\n",
                            binders = binders.join(", "),
                            elems = elems.join(", "),
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binders = fields.join(", ");
                        let mut inserts = String::new();
                        for f in fields {
                            inserts.push_str(&format!(
                                "__inner.insert(\"{f}\".to_string(), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binders} }} => {{\n\
                             let mut __inner = ::serde::Map::new();\n\
                             {inserts}\
                             let mut __map = ::serde::Map::new();\n\
                             __map.insert(\"{v}\".to_string(), ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__map)\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.body {
        Body::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(\
                     __map.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                     .map_err(|__e| ::serde::Error::context(\"{name}.{f}\", __e))?,\n"
                ));
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::Object(__map) => ::std::result::Result::Ok({name} {{\n{inits}}}),\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\"expected object for {name}\")),\n\
                 }}"
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                    )),
                    VariantShape::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__inner)\
                         .map_err(|__e| ::serde::Error::context(\"{name}::{v}\", __e))?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| {
                                format!(
                                    "::serde::Deserialize::from_value(&__arr[{k}])\
                                     .map_err(|__e| ::serde::Error::context(\"{name}::{v}.{k}\", __e))?"
                                )
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{v}\" => match __inner {{\n\
                             ::serde::Value::Array(__arr) if __arr.len() == {n} => \
                             ::std::result::Result::Ok({name}::{v}({elems})),\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                             \"expected array of length {n} for {name}::{v}\")),\n\
                             }},\n",
                            elems = elems.join(", "),
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 __inner_map.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                                 .map_err(|__e| ::serde::Error::context(\"{name}::{v}.{f}\", __e))?,\n"
                            ));
                        }
                        payload_arms.push_str(&format!(
                            "\"{v}\" => match __inner {{\n\
                             ::serde::Value::Object(__inner_map) => \
                             ::std::result::Result::Ok({name}::{v} {{\n{inits}}}),\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                             \"expected object for {name}::{v}\")),\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__map) if __map.len() == 1 => {{\n\
                 let (__tag, __inner) = __map.iter().next().unwrap();\n\
                 match __tag.as_str() {{\n\
                 {payload_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected string or single-key object for {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, unreachable_patterns, clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
