//! Offline stand-in for the `serde` crate.
//!
//! The build container has no network access and no registry cache, so the
//! real `serde` cannot be fetched. This crate implements the small slice of
//! serde that humnet actually uses — `#[derive(Serialize, Deserialize)]`
//! on plain structs and enums, round-tripped through a JSON value model —
//! with the same crate name so downstream code compiles unchanged.
//!
//! Differences from real serde, by design:
//!
//! * `Serialize`/`Deserialize` are simple value-model traits (no generic
//!   `Serializer`/`Deserializer` plumbing, no zero-copy, no `#[serde(...)]`
//!   attributes — the workspace uses none).
//! * The data model is [`Value`], shared with the in-tree `serde_json`
//!   stand-in (which owns the JSON text syntax).
//!
//! Enum representation mirrors serde's externally-tagged default, so JSON
//! produced here matches what real serde would emit for these types.

pub use serde_derive::{Deserialize, Serialize as SerializeDerive};
// Re-export the derive macros under the trait names: Rust keeps macro and
// trait namespaces separate, so `use serde::{Serialize, Deserialize}`
// imports both, exactly as with the real crate.
pub use serde_derive::Serialize;

use std::collections::BTreeMap;
use std::fmt;

/// Map type used for JSON objects (sorted keys, like serde_json's default).
pub type Map = BTreeMap<String, Value>;

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with sorted keys.
    Object(Map),
}

impl Value {
    /// View as an object map, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// View as an array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// View as a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` for any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(x) => Some(x as f64),
            Value::I64(x) => Some(x as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// Numeric view as `u64` when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) if x >= 0 => Some(x as u64),
            Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                Some(x as u64)
            }
            _ => None,
        }
    }
}

/// `value["key"]` — panics on non-objects like serde_json; missing keys
/// yield `Null` (via a shared static) on shared access.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Mutable indexing auto-inserts `Null` for missing keys, so
/// `value["a"]["b"] = x` works on nested objects.
impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if !matches!(self, Value::Object(_)) {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(m) => m.entry(key.to_owned()).or_insert(Value::Null),
            _ => unreachable!(),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(a) => &mut a[idx],
            _ => panic!("cannot index non-array value with {idx}"),
        }
    }
}

/// Compact JSON rendering (the text syntax itself lives here so both this
/// crate and the `serde_json` stand-in can use it).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(x) => write!(f, "{x}"),
            Value::I64(x) => write!(f, "{x}"),
            Value::F64(x) => {
                if x.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float form and is
                    // valid JSON for finite values.
                    write!(f, "{x:?}")
                } else {
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_json_string(f, s),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Construct from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Wrap an inner error with a location breadcrumb.
    pub fn context(at: &str, inner: Error) -> Self {
        Error {
            msg: format!("{at}: {}", inner.msg),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(x).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x: i64 = match *v {
                    Value::I64(x) => x,
                    Value::U64(x) => i64::try_from(x).map_err(|_| Error::custom("integer out of range"))?,
                    Value::F64(f) if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) => f as i64,
                    _ => return Err(Error::custom("expected integer")),
                };
                <$t>::try_from(x).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // JSON has no NaN/Infinity literal; serialization writes `null`
            // for them, so read `null` back as NaN to keep round-trips total.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

/// Deserializing into `&'static str` (used by derived structs whose fields
/// are static labels) goes through a global intern table: each distinct
/// string is leaked once and reused forever after.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        use std::collections::BTreeSet;
        use std::sync::{Mutex, OnceLock};
        static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
        match v {
            Value::Str(s) => {
                let mut table = INTERNED
                    .get_or_init(|| Mutex::new(BTreeSet::new()))
                    .lock()
                    .expect("intern table poisoned");
                if let Some(&interned) = table.get(s.as_str()) {
                    return Ok(interned);
                }
                let leaked: &'static str = Box::leak(s.clone().into_boxed_str());
                table.insert(leaked);
                Ok(leaked)
            }
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($n:expr; $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(a) if a.len() == $n => {
                        Ok(($($t::from_value(&a[$idx])?,)+))
                    }
                    _ => Err(Error::custom(concat!("expected array of length ", $n))),
                }
            }
        }
    };
}
impl_tuple!(1; A.0);
impl_tuple!(2; A.0, B.1);
impl_tuple!(3; A.0, B.1, C.2);
impl_tuple!(4; A.0, B.1, C.2, D.3);
impl_tuple!(5; A.0, B.1, C.2, D.3, E.4);
impl_tuple!(6; A.0, B.1, C.2, D.3, E.4, F.5);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u32>::from_value(&Value::Null).unwrap(),
            None::<u32>
        );
    }

    #[test]
    fn nan_round_trips_via_null() {
        let v = f64::NAN.to_value();
        assert_eq!(v.to_string(), "null");
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn display_escapes_strings() {
        let v = Value::Str("a\"b\\c\nd".into());
        assert_eq!(v.to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn index_and_index_mut() {
        let mut v = Value::Object(Map::new());
        v["outer"]["inner"] = Value::U64(3);
        assert_eq!(v["outer"]["inner"], Value::U64(3));
        assert_eq!(v["missing"], Value::Null);
    }
}
