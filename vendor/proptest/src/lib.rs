//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, `Range`-based strategies,
//! `prop::collection::vec`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` / `prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports its
//! inputs via the per-arg Debug dump instead), and generation is fully
//! deterministic — the RNG for case `i` of test `t` is seeded from
//! `fnv1a(module_path::t)` mixed with `i`, so failures reproduce exactly
//! across runs without a persistence file.

pub mod test_runner {
    /// Run configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful (non-rejected) cases required to pass.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why an individual generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure — aborts the whole test.
        Fail(String),
        /// `prop_assume!` rejection — the case is re-drawn.
        Reject,
    }

    /// Deterministic generator (SplitMix64) used to sample strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one test case, derived from the test's identity hash and
        /// the case index.
        pub fn for_case(test_seed: u64, case: u64) -> Self {
            let mut rng = TestRng {
                state: test_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            // Warm up so nearby case indices decorrelate.
            rng.next_u64();
            rng.next_u64();
            rng
        }

        /// Next raw 64-bit draw (SplitMix64 step).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a of a string — const so test identity seeds are compile-time.
    pub const fn fnv1a(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            i += 1;
        }
        hash
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A way to draw values of `Self::Value` from a [`TestRng`].
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64 + rng.next_f64() * (self.end as f64 - self.start as f64)) as f32
        }
    }

    /// `Just(x)` — always yields a clone of `x`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` works like upstream.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Entry macro: runs each contained `fn` as a `#[test]` over `cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            const __TEST_SEED: u64 =
                $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            let __cfg: $crate::test_runner::Config = $cfg;
            let __max_rejects: u64 = (__cfg.cases as u64) * 16 + 64;
            let mut __passed: u32 = 0;
            let mut __rejected: u64 = 0;
            let mut __attempt: u64 = 0;
            while __passed < __cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__TEST_SEED, __attempt);
                __attempt += 1;
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                        )*
                        // Reborrow the inputs for the failure dump before the
                        // body can move them.
                        #[allow(clippy::redundant_closure_call)]
                        let __dump = (|| {
                            let mut __s = ::std::string::String::new();
                            $(
                                __s.push_str(&format!(
                                    "  {} = {:?}\n", stringify!($arg), &$arg
                                ));
                            )*
                            __s
                        })();
                        let __run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                        __run().map_err(|__e| match __e {
                            $crate::test_runner::TestCaseError::Fail(__msg) => {
                                $crate::test_runner::TestCaseError::Fail(
                                    format!("{__msg}\ninputs:\n{__dump}"))
                            }
                            __other => __other,
                        })
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        __rejected += 1;
                        assert!(
                            __rejected <= __max_rejects,
                            "proptest `{}`: too many prop_assume! rejections ({})",
                            stringify!($name),
                            __rejected
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest `{}` failed at case {} (seed {:#x}):\n{}",
                            stringify!($name),
                            __attempt - 1,
                            __TEST_SEED,
                            __msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} — {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
                __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {} — {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __left,
                __right
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if *__left == *__right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __left
            )));
        }
    }};
}

/// Reject (re-draw) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_header_is_honoured(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let draw = |case| {
            let mut rng = TestRng::for_case(42, case);
            crate::collection::vec(0u64..1000, 3..10).sample(&mut rng)
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
