//! Offline stand-in for `criterion`.
//!
//! Same surface API (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, `criterion_group!`,
//! `criterion_main!`) but a deliberately small measurement loop: a short
//! calibration pass sizes the batch, one timed pass reports mean
//! nanoseconds per iteration. No statistics, plots, or saved baselines —
//! enough to smoke-run every bench target and print comparable numbers
//! without network-fetched dependencies.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target amount of wall-clock time to spend per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Calibration budget used to size the timed batch.
const CALIBRATE_BUDGET: Duration = Duration::from_millis(20);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A named group; benchmark ids are prefixed with the group name.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark inside this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, &mut f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Finish the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Render to the id string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    // Calibrate: double the iteration count until one pass costs enough to
    // time meaningfully (or the calibration budget is spent).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= CALIBRATE_BUDGET || iters >= 1 << 20 {
            let per_iter = b.elapsed.as_nanos().max(1) / u128::from(iters);
            // Size the measured batch for the full budget.
            let target = (MEASURE_BUDGET.as_nanos() / per_iter.max(1)).clamp(1, 1 << 24) as u64;
            let mut timed = Bencher {
                iters: target,
                elapsed: Duration::ZERO,
            };
            f(&mut timed);
            report(id, timed.iters, timed.elapsed);
            return;
        }
        iters = iters.saturating_mul(2);
    }
}

fn report(id: &str, iters: u64, elapsed: Duration) {
    let per_iter_ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let (value, unit) = if per_iter_ns >= 1e9 {
        (per_iter_ns / 1e9, "s")
    } else if per_iter_ns >= 1e6 {
        (per_iter_ns / 1e6, "ms")
    } else if per_iter_ns >= 1e3 {
        (per_iter_ns / 1e3, "µs")
    } else {
        (per_iter_ns, "ns")
    };
    println!("{id:<56} time: {value:>10.3} {unit}/iter  ({iters} iters)");
}

/// Collect benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness-less bench binaries with `--test`
            // or `--bench` style args; a bare smoke pass is enough there,
            // and full timing runs under `cargo bench`.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("grp");
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| black_box(1)));
        group.bench_with_input(BenchmarkId::new("g", "x"), &41u64, |b, &x| {
            b.iter(|| black_box(x) + 1)
        });
        group.finish();
    }
}
