//! Regenerates every table and figure recorded in `EXPERIMENTS.md`, under
//! a supervised runner with optional fault injection, sharding, and
//! journal-driven replay.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin experiments -- run                # run everything
//! cargo run --release --bin experiments -- run f3 t1          # run a subset
//! cargo run --release --bin experiments -- run --fault-profile chaos --shards 4
//! cargo run --release --bin experiments -- run --shards 4 --schedule steal
//! cargo run --release --bin experiments -- run --metrics-out m.json --journal-out j.jsonl
//! cargo run --release --bin experiments -- list               # experiment catalog
//! cargo run --release --bin experiments -- merge-metrics a.json b.json
//! cargo run --release --bin experiments -- replay j.jsonl     # re-execute a capture
//! cargo run --release --bin experiments -- f3 t1              # bare form = `run`
//! ```
//!
//! Every experiment executes on a watchdogged worker thread with panic
//! isolation, bounded retries and a per-family circuit breaker. With
//! `--shards N` the experiment list is partitioned across N in-process
//! shards whose merged canonical journal and report are byte-identical to
//! the single-shard run of the same seed. `replay` reconstructs a past
//! run's configuration and fault schedule from its captured journal,
//! re-executes it, and diffs the canonical event streams.
//!
//! Output is plain text: each experiment prints its rendered tables and
//! series (with ASCII sparklines standing in for figures). The supervised
//! run also collects telemetry — counters, latency histograms, tracing
//! spans, and a structured event journal — which `--metrics-out`,
//! `--journal-out`, and `--trace-summary` expose.
//!
//! Exit codes: 0 — all experiments completed (or replay matched);
//! 1 — an experiment failed, or replay diverged from the capture;
//! 2 — an experiment timed out, or bad arguments / unreadable input /
//! unwritable output.

use humnet::core::experiments::ExperimentId;
use humnet::resilience::{
    replay, ExperimentSpec, FaultProfile, JobError, JobOutput, RunnerConfig, Schedule, Supervisor,
};
use humnet::telemetry::{journal, TelemetrySnapshot, TextTable};
use std::time::Duration;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(args.split_off(1)),
        Some("list") => cmd_list(args.split_off(1)),
        Some("merge-metrics") => cmd_merge_metrics(args.split_off(1)),
        Some("replay") => cmd_replay(args.split_off(1)),
        // Bare `experiments [OPTIONS] [ID...]` stays an alias for `run`.
        _ => cmd_run(args),
    }
}

// ---------------------------------------------------------------- run --

struct RunCli {
    config: RunnerConfig,
    shards: u32,
    schedule: Schedule,
    ids: Vec<ExperimentId>,
    report_only: bool,
    metrics_out: Option<String>,
    journal_out: Option<String>,
    trace_summary: bool,
}

fn cmd_run(args: Vec<String>) -> ! {
    let cli = match parse_run_args(args.into_iter()) {
        Ok(cli) => cli,
        Err(msg) => usage_error(&msg),
    };

    // Fail on unwritable output paths *before* spending minutes running
    // experiments: create/truncate each output file up front.
    for (path, what) in [
        (&cli.metrics_out, "metrics snapshot"),
        (&cli.journal_out, "event journal"),
    ] {
        if let Some(path) = path {
            preflight_writable(path, what);
        }
    }

    let specs: Vec<ExperimentSpec> = cli.ids.iter().map(|&id| spec_for(id)).collect();
    let run = Supervisor::builder()
        .config(cli.config)
        .shards(cli.shards)
        .schedule(cli.schedule)
        .build()
        .run(&specs);

    if !cli.report_only {
        for (id, row) in cli.ids.iter().zip(&run.report.experiments) {
            banner(&format!("{} — {}", id.code().to_uppercase(), id.title()));
            match run.outputs.get(id.code()) {
                Some(rendered) => println!("{rendered}"),
                None => eprintln!("{} {}: {}", id.code().to_uppercase(), row.status, row.message),
            }
        }
    }

    println!("\n{}", run.report.render());

    // The metrics table carries timings, so it would break the
    // byte-stability of --report-only output across identical runs; the
    // report-only mode is what CI diffs.
    if !cli.report_only {
        println!("\n{}", run.telemetry.render_metrics_table());
    }
    if cli.trace_summary {
        println!("\n{}", run.telemetry.render_trace_summary());
    }
    if let Some(path) = &cli.metrics_out {
        match run.telemetry.to_json() {
            Ok(json) => write_or_die(path, &json, "metrics snapshot"),
            Err(e) => die(&format!("failed to serialize metrics snapshot: {e}")),
        }
    }
    if let Some(path) = &cli.journal_out {
        match run.telemetry.to_jsonl() {
            Ok(jsonl) => write_or_die(path, &jsonl, "event journal"),
            Err(e) => die(&format!("failed to serialize event journal: {e}")),
        }
    }

    std::process::exit(run.report.exit_code());
}

fn parse_run_args(args: impl Iterator<Item = String>) -> Result<RunCli, String> {
    let mut config = RunnerConfig::default();
    let mut shards = 1u32;
    let mut schedule = Schedule::Static;
    let mut ids = Vec::new();
    let mut report_only = false;
    let mut metrics_out = None;
    let mut journal_out = None;
    let mut trace_summary = false;
    let mut args = args.peekable();

    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--fault-profile" => {
                let v = value("--fault-profile")?;
                config.profile = FaultProfile::parse(&v)
                    .ok_or_else(|| format!("unknown fault profile '{v}' (none|churn|outage|chaos)"))?;
            }
            "--retries" => {
                let v = value("--retries")?;
                config.retries = v.parse().map_err(|_| format!("bad --retries value '{v}'"))?;
            }
            "--deadline-ms" => {
                let v = value("--deadline-ms")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --deadline-ms value '{v}'"))?;
                if ms == 0 {
                    return Err("--deadline-ms must be positive".to_owned());
                }
                config.deadline = Duration::from_millis(ms);
            }
            "--seed" => {
                let v = value("--seed")?;
                config.seed = v.parse().map_err(|_| format!("bad --seed value '{v}'"))?;
            }
            "--intensity" => {
                let v = value("--intensity")?;
                let x: f64 = v.parse().map_err(|_| format!("bad --intensity value '{v}'"))?;
                if !x.is_finite() || x < 0.0 {
                    return Err("--intensity must be a nonnegative number".to_owned());
                }
                config.intensity = x;
            }
            "--shards" => {
                let v = value("--shards")?;
                let n: u32 = v.parse().map_err(|_| format!("bad --shards value '{v}'"))?;
                if n == 0 {
                    return Err("--shards must be positive".to_owned());
                }
                shards = n;
            }
            "--schedule" => {
                let v = value("--schedule")?;
                schedule = Schedule::parse(&v)
                    .ok_or_else(|| format!("unknown schedule '{v}' (static|steal)"))?;
            }
            "--report-only" => report_only = true,
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
            "--journal-out" => journal_out = Some(value("--journal-out")?),
            "--trace-summary" => trace_summary = true,
            flag if flag.starts_with('-') => return Err(format!("unknown option '{flag}'")),
            id => {
                let parsed = ExperimentId::parse(id)
                    .ok_or_else(|| format!("unknown experiment id '{id}'"))?;
                if !ids.contains(&parsed) {
                    ids.push(parsed);
                }
            }
        }
    }

    if ids.is_empty() {
        ids = ExperimentId::ALL.to_vec();
    } else {
        // Run subsets in canonical order regardless of CLI order.
        ids.sort_by_key(|id| ExperimentId::ALL.iter().position(|a| a == id));
    }
    Ok(RunCli {
        config,
        shards,
        schedule,
        ids,
        report_only,
        metrics_out,
        journal_out,
        trace_summary,
    })
}

// --------------------------------------------------------------- list --

fn cmd_list(args: Vec<String>) -> ! {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        std::process::exit(0);
    }
    if let Some(stray) = args.first() {
        usage_error(&format!("list takes no arguments (got '{stray}')"));
    }
    let mut table = TextTable::new(&["code", "family", "faults", "experiment"]);
    for id in ExperimentId::ALL {
        table.row(vec![
            id.code().to_owned(),
            id.family().to_owned(),
            if id.fault_capable() { "yes" } else { "-" }.to_owned(),
            id.title().to_owned(),
        ]);
    }
    println!("{}", table.render());
    println!("{} experiments; run with: experiments run [ID...]", ExperimentId::ALL.len());
    std::process::exit(0);
}

// ------------------------------------------------------ merge-metrics --

fn cmd_merge_metrics(args: Vec<String>) -> ! {
    let mut paths = Vec::new();
    let mut out = None;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => usage_error("--out needs a value"),
            },
            flag if flag.starts_with('-') => usage_error(&format!("unknown option '{flag}'")),
            path => paths.push(path.to_owned()),
        }
    }
    if paths.is_empty() {
        usage_error("merge-metrics needs at least one snapshot path");
    }

    let mut merged = TelemetrySnapshot::default();
    for path in &paths {
        let text = read_or_die(path, "metrics snapshot");
        match TelemetrySnapshot::from_json(&text) {
            // Scope "" leaves run-level events unscoped, exactly like the
            // sharded supervisor's own merge.
            Ok(snap) => merged.merge(&snap, ""),
            Err(e) => die(&format!("failed to parse metrics snapshot {path}: {e}")),
        }
    }
    match merged.to_json() {
        Ok(json) => match &out {
            Some(path) => write_or_die(path, &json, "merged snapshot"),
            None => println!("{json}"),
        },
        Err(e) => die(&format!("failed to serialize merged snapshot: {e}")),
    }
    eprintln!(
        "merged {} snapshots: {} counters, {} events",
        paths.len(),
        merged.metrics.counters.len(),
        merged.events.len()
    );
    std::process::exit(0);
}

// -------------------------------------------------------------- replay --

fn cmd_replay(args: Vec<String>) -> ! {
    let mut path = None;
    for arg in &args {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => usage_error(&format!("unknown option '{flag}'")),
            p if path.is_none() => path = Some(p.to_owned()),
            stray => usage_error(&format!("replay takes one journal path (got '{stray}')")),
        }
    }
    let Some(path) = path else {
        usage_error("replay needs a journal path (JSONL from --journal-out)");
    };

    let text = read_or_die(&path, "event journal");
    let events = match journal::from_jsonl(&text) {
        Ok(events) => events,
        Err(e) => die(&format!("failed to parse event journal {path}: {e}")),
    };
    let factory = |code: &str| ExperimentId::parse(code).map(spec_for);
    match replay::replay(&events, &factory) {
        Ok(report) => {
            print!("{}", report.render());
            std::process::exit(report.exit_code());
        }
        Err(e) => die(&format!("cannot replay {path}: {e}")),
    }
}

// ------------------------------------------------------------- shared --

/// The supervised-runner job for one experiment — the single definition
/// both `run` and `replay` execute, so a replayed experiment is driven by
/// exactly the code that produced the capture.
fn spec_for(id: ExperimentId) -> ExperimentSpec {
    ExperimentSpec::new(id.code(), id.title(), id.family(), move |plan, tel| {
        id.run_instrumented(plan, tel)
            .map(|r| JobOutput {
                rendered: r.rendered,
                faults_injected: r.faults_injected,
            })
            .map_err(|e| Box::new(e) as JobError)
    })
}

/// Create/truncate `path` now so an unwritable destination fails the
/// process (exit 2) before any experiment runs, not after.
fn preflight_writable(path: &str, what: &str) {
    if let Err(e) = std::fs::File::create(path) {
        die(&format!("cannot write {what} to {path}: {e}"));
    }
}

fn read_or_die(path: &str, what: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => die(&format!("failed to read {what} from {path}: {e}")),
    }
}

fn write_or_die(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        die(&format!("failed to write {what} to {path}: {e}"));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

const USAGE: &str = "\
usage: experiments <COMMAND> [ARGS]
       experiments [OPTIONS] [ID...]        (alias for `run`)

Commands:
  run [OPTIONS] [ID...]          run experiments under the supervisor
  list                           print the experiment catalog (codes, families, titles)
  merge-metrics <PATH>... [--out <PATH>]
                                 merge telemetry snapshots (e.g. per-shard
                                 --metrics-out files) into one JSON snapshot
  replay <JOURNAL.jsonl>         re-execute a captured run and diff canonical events

IDs (default: all, in EXPERIMENTS.md order):
  f1 t1 f2 t2 f3 f4 t3 f5 t4 f6 t5 f7 f8 f9 t6 t7

Run options:
  --fault-profile <none|churn|outage|chaos>  fault mix to inject (default none)
  --retries <N>        extra attempts per experiment (default 1)
  --deadline-ms <N>    per-attempt wall-clock deadline (default 30000)
  --seed <N>           seed for fault plans and retry jitter (default 42)
  --intensity <X>      multiplier on the profile's fault rates (default 1.0)
  --shards <N>         partition the run across N in-process shards; the
                       merged canonical output is shard-invariant (default 1)
  --schedule <static|steal>
                       how shards receive work: fixed contiguous slices, or
                       a work-stealing queue that rebalances skewed costs;
                       the canonical output is identical (default static)
  --report-only        print only the final run report
  --metrics-out <PATH> write the telemetry snapshot (metrics + spans) as JSON
  --journal-out <PATH> write the structured event journal as JSONL
  --trace-summary      print the per-span flame summary after the report
  --help               show this help

Exit codes:
  0  all experiments completed / replay matched the capture
  1  an experiment failed / replay diverged
  2  an experiment timed out, or bad arguments / unreadable or unwritable files";

fn banner(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}\n", "=".repeat(72));
}
