//! Regenerates every table and figure recorded in `EXPERIMENTS.md`, under
//! a supervised runner with optional fault injection.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin experiments                      # run everything
//! cargo run --release --bin experiments -- f3 t1             # run a subset
//! cargo run --release --bin experiments -- --fault-profile chaos --retries 2 --deadline-ms 30000
//! cargo run --release --bin experiments -- --metrics-out m.json --journal-out j.jsonl
//! ```
//!
//! Every experiment executes on a watchdogged worker thread with panic
//! isolation, bounded retries and a per-family circuit breaker; the run
//! ends with a status table and the process exits nonzero if any
//! experiment failed (1) or timed out (2).
//!
//! Output is plain text: each experiment prints its rendered tables and
//! series (with ASCII sparklines standing in for figures). The supervised
//! run also collects telemetry — counters, latency histograms, tracing
//! spans, and a structured event journal — which `--metrics-out`,
//! `--journal-out`, and `--trace-summary` expose.

use humnet::core::experiments::ExperimentId;
use humnet::resilience::{
    ExperimentSpec, FaultProfile, JobError, JobOutput, RunnerConfig, Supervisor,
};
use std::time::Duration;

struct Cli {
    config: RunnerConfig,
    ids: Vec<ExperimentId>,
    report_only: bool,
    metrics_out: Option<String>,
    journal_out: Option<String>,
    trace_summary: bool,
}

fn main() {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let specs: Vec<ExperimentSpec> = cli
        .ids
        .iter()
        .map(|&id| {
            ExperimentSpec::new(id.code(), id.title(), id.family(), move |plan, tel| {
                id.run_instrumented(plan, tel)
                    .map(|r| JobOutput {
                        rendered: r.rendered,
                        faults_injected: r.faults_injected,
                    })
                    .map_err(|e| Box::new(e) as JobError)
            })
        })
        .collect();

    let run = Supervisor::new(cli.config).run(&specs);

    if !cli.report_only {
        for (id, row) in cli.ids.iter().zip(&run.report.experiments) {
            banner(&format!("{} — {}", id.code().to_uppercase(), id.title()));
            match run.outputs.get(id.code()) {
                Some(rendered) => println!("{rendered}"),
                None => eprintln!("{} {}: {}", id.code().to_uppercase(), row.status, row.message),
            }
        }
    }

    println!("\n{}", run.report.render());

    // The metrics table carries timings, so it would break the
    // byte-stability of --report-only output across identical runs; the
    // report-only mode is what CI diffs.
    if !cli.report_only {
        println!("\n{}", run.telemetry.render_metrics_table());
    }
    if cli.trace_summary {
        println!("\n{}", run.telemetry.render_trace_summary());
    }
    if let Some(path) = &cli.metrics_out {
        match run.telemetry.to_json() {
            Ok(json) => write_or_die(path, &json, "metrics snapshot"),
            Err(e) => die(&format!("failed to serialize metrics snapshot: {e}")),
        }
    }
    if let Some(path) = &cli.journal_out {
        match run.telemetry.to_jsonl() {
            Ok(jsonl) => write_or_die(path, &jsonl, "event journal"),
            Err(e) => die(&format!("failed to serialize event journal: {e}")),
        }
    }

    std::process::exit(run.report.exit_code());
}

fn write_or_die(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        die(&format!("failed to write {what} to {path}: {e}"));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

const USAGE: &str = "\
usage: experiments [OPTIONS] [ID...]

IDs (default: all, in EXPERIMENTS.md order):
  f1 t1 f2 t2 f3 f4 t3 f5 t4 f6 t5 f7 f8 f9 t6 t7

Options:
  --fault-profile <none|churn|outage|chaos>  fault mix to inject (default none)
  --retries <N>        extra attempts per experiment (default 1)
  --deadline-ms <N>    per-attempt wall-clock deadline (default 30000)
  --seed <N>           seed for fault plans and retry jitter (default 42)
  --intensity <X>      multiplier on the profile's fault rates (default 1.0)
  --report-only        print only the final run report
  --metrics-out <PATH> write the telemetry snapshot (metrics + spans) as JSON
  --journal-out <PATH> write the structured event journal as JSONL
  --trace-summary      print the per-span flame summary after the report
  --help               show this help";

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut config = RunnerConfig::default();
    let mut ids = Vec::new();
    let mut report_only = false;
    let mut metrics_out = None;
    let mut journal_out = None;
    let mut trace_summary = false;
    let mut args = args.peekable();

    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--fault-profile" => {
                let v = value("--fault-profile")?;
                config.profile = FaultProfile::parse(&v)
                    .ok_or_else(|| format!("unknown fault profile '{v}' (none|churn|outage|chaos)"))?;
            }
            "--retries" => {
                let v = value("--retries")?;
                config.retries = v.parse().map_err(|_| format!("bad --retries value '{v}'"))?;
            }
            "--deadline-ms" => {
                let v = value("--deadline-ms")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --deadline-ms value '{v}'"))?;
                if ms == 0 {
                    return Err("--deadline-ms must be positive".to_owned());
                }
                config.deadline = Duration::from_millis(ms);
            }
            "--seed" => {
                let v = value("--seed")?;
                config.seed = v.parse().map_err(|_| format!("bad --seed value '{v}'"))?;
            }
            "--intensity" => {
                let v = value("--intensity")?;
                let x: f64 = v.parse().map_err(|_| format!("bad --intensity value '{v}'"))?;
                if !x.is_finite() || x < 0.0 {
                    return Err("--intensity must be a nonnegative number".to_owned());
                }
                config.intensity = x;
            }
            "--report-only" => report_only = true,
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
            "--journal-out" => journal_out = Some(value("--journal-out")?),
            "--trace-summary" => trace_summary = true,
            flag if flag.starts_with('-') => return Err(format!("unknown option '{flag}'")),
            id => {
                let parsed = ExperimentId::parse(id)
                    .ok_or_else(|| format!("unknown experiment id '{id}'"))?;
                if !ids.contains(&parsed) {
                    ids.push(parsed);
                }
            }
        }
    }

    if ids.is_empty() {
        ids = ExperimentId::ALL.to_vec();
    } else {
        // Run subsets in canonical order regardless of CLI order.
        ids.sort_by_key(|id| ExperimentId::ALL.iter().position(|a| a == id));
    }
    Ok(Cli {
        config,
        ids,
        report_only,
        metrics_out,
        journal_out,
        trace_summary,
    })
}

fn banner(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}\n", "=".repeat(72));
}
