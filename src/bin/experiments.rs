//! Regenerates every table and figure recorded in `EXPERIMENTS.md`, under
//! a supervised runner with optional fault injection, sharding,
//! journal-driven replay, and cross-process dispatch.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin experiments -- run                # run everything
//! cargo run --release --bin experiments -- run f3 t1          # run a subset
//! cargo run --release --bin experiments -- run --fault-profile chaos --shards 4
//! cargo run --release --bin experiments -- run --shards 4 --schedule steal
//! cargo run --release --bin experiments -- run --metrics-out m.json --journal-out j.jsonl
//! cargo run --release --bin experiments -- dispatch --procs 4  # child processes
//! cargo run --release --bin experiments -- dispatch --procs 4 --chaos-proc kill:2
//! cargo run --release --bin experiments -- worker --addr 127.0.0.1:0  # remote shard worker
//! cargo run --release --bin experiments -- dispatch --procs 4 --workers host:7171,host:7172
//! cargo run --release --bin experiments -- list               # experiment catalog
//! cargo run --release --bin experiments -- merge-metrics a.json b.json
//! cargo run --release --bin experiments -- replay j.jsonl     # re-execute a capture
//! cargo run --release --bin experiments -- serve              # long-lived daemon
//! cargo run --release --bin experiments -- query f3 --seed 7  # ask the daemon
//! cargo run --release --bin experiments -- ramp               # capacity search
//! cargo run --release --bin experiments -- f3 t1              # bare form = `run`
//! ```
//!
//! Every experiment executes on a watchdogged worker thread with panic
//! isolation, bounded retries and a per-family circuit breaker. With
//! `--shards N` the experiment list is partitioned across N in-process
//! shards whose merged canonical journal and report are byte-identical to
//! the single-shard run of the same seed. `dispatch --procs K` lifts the
//! same partition to K supervised *child processes* (the binary re-invokes
//! itself per shard): children heartbeat, crashed or hung shards are
//! killed and retried with deterministic backoff, `--allow-partial`
//! degrades gracefully when a shard stays dead, and the merged canonical
//! output remains byte-identical to the in-process run. `replay`
//! reconstructs a past run's configuration and fault schedule from its
//! captured journal, re-executes it, and diffs the canonical event
//! streams.
//!
//! Output is plain text: each experiment prints its rendered tables and
//! series (with ASCII sparklines standing in for figures). The supervised
//! run also collects telemetry — counters, latency histograms, tracing
//! spans, and a structured event journal — which `--metrics-out`,
//! `--journal-out`, and `--trace-summary` expose; `--report-out` writes
//! the serialized report+outputs artifact the dispatcher consumes.
//!
//! Exit codes: 0 — all experiments completed (or replay matched);
//! 1 — an experiment failed, or replay diverged from the capture;
//! 2 — an experiment timed out, a shard died without `--allow-partial`,
//! or bad arguments / unreadable input / unwritable output;
//! 3 — dispatch degraded to partial results under `--allow-partial`.

use humnet::core::experiments::ExperimentId;
use humnet::resilience::{
    dispatch, dispatch_remote, replay, ChaosNet, ChaosProc, DispatchConfig, DispatchOutcome,
    ExperimentSpec, FaultProfile, JobError, JobOutput, RemoteOptions, RunArtifact, RunnerConfig,
    Schedule, ShardPlan, ShardSpec, Supervisor, Worker, WorkerChaos, WorkerConfig, CHAOS_ENV,
    CHAOS_KILL_CODE, CHAOS_NET_ENV,
};
use humnet::serve::{
    append_history, install_signal_handlers, read_history, render_trend, run_ramp, ClientPool,
    RampPlan, Request, RequestMix, ServeClient, ServeConfig, Server,
};
use humnet::telemetry::{journal, TelemetrySnapshot, TextTable};
use std::sync::Arc;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(args.split_off(1)),
        Some("dispatch") => cmd_dispatch(args.split_off(1)),
        Some("worker") => cmd_worker(args.split_off(1)),
        Some("list") => cmd_list(args.split_off(1)),
        Some("merge-metrics") => cmd_merge_metrics(args.split_off(1)),
        Some("replay") => cmd_replay(args.split_off(1)),
        Some("serve") => cmd_serve(args.split_off(1)),
        Some("query") => cmd_query(args.split_off(1)),
        Some("ramp") => cmd_ramp(args.split_off(1)),
        // Bare `experiments [OPTIONS] [ID...]` stays an alias for `run`.
        _ => cmd_run(args),
    };
    ExitCode::from(result.unwrap_or_else(Failure::report))
}

/// A command that cannot proceed: the single exit path for every error,
/// so no subcommand calls `std::process::exit` from the middle of its
/// control flow.
enum Failure {
    /// Bad CLI input — print the message and the usage text.
    Usage(String),
    /// Anything else fatal — unreadable input, unwritable output, a dead
    /// shard without `--allow-partial`.
    Fatal(String),
}

impl Failure {
    fn report(self) -> u8 {
        match self {
            Failure::Usage(msg) => {
                eprintln!("{msg}");
                eprintln!("{USAGE}");
            }
            Failure::Fatal(msg) => eprintln!("{msg}"),
        }
        2
    }
}

type CmdResult = Result<u8, Failure>;

// ---------------------------------------------------- shared run flags --

/// The run-configuration flags every load-bearing subcommand accepts —
/// `run`, `dispatch`, `serve`, `query`, and `ramp` all take the same
/// `--fault-profile/--seed/--intensity/--retries/--deadline-ms` tuple
/// (plus `--breaker-cooldown` where a runner executes locally). One
/// parse-and-validate path instead of five hand-copied match arms.
///
/// Every field is optional so each consumer can distinguish "given on
/// the command line" from "keep your default": `run` overlays onto a
/// [`RunnerConfig`], `query` onto a wire [`Request`] (absent fields let
/// the daemon's own defaults fill in).
#[derive(Default)]
struct RunFlags {
    profile: Option<FaultProfile>,
    retries: Option<u32>,
    deadline: Option<Duration>,
    seed: Option<u64>,
    intensity: Option<f64>,
    breaker_cooldown: Option<u32>,
}

impl RunFlags {
    /// Consume `arg` (pulling its value from `args`) if it is one of the
    /// shared flags; `Ok(false)` hands it back to the caller's own match.
    /// Call this *before* borrowing `args` for command-specific flags.
    fn try_consume(
        &mut self,
        arg: &str,
        args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    ) -> Result<bool, Failure> {
        let mut value = |flag: &str| -> Result<String, Failure> {
            args.next()
                .ok_or_else(|| Failure::Usage(format!("{flag} needs a value")))
        };
        match arg {
            "--fault-profile" => {
                let v = value("--fault-profile")?;
                self.profile = Some(FaultProfile::parse(&v).ok_or_else(|| {
                    Failure::Usage(format!("unknown fault profile '{v}' (none|churn|outage|chaos)"))
                })?);
            }
            "--retries" => self.retries = Some(parse_num(&value("--retries")?, "--retries")?),
            "--deadline-ms" => {
                let ms: u64 = parse_num(&value("--deadline-ms")?, "--deadline-ms")?;
                if ms == 0 {
                    return Err(Failure::Usage("--deadline-ms must be positive".to_owned()));
                }
                self.deadline = Some(Duration::from_millis(ms));
            }
            "--seed" => self.seed = Some(parse_num(&value("--seed")?, "--seed")?),
            "--intensity" => {
                let v = value("--intensity")?;
                let x: f64 = v
                    .parse()
                    .map_err(|_| Failure::Usage(format!("bad --intensity value '{v}'")))?;
                if !x.is_finite() || x < 0.0 {
                    return Err(Failure::Usage(
                        "--intensity must be a nonnegative number".to_owned(),
                    ));
                }
                self.intensity = Some(x);
            }
            "--breaker-cooldown" => {
                self.breaker_cooldown =
                    Some(parse_num(&value("--breaker-cooldown")?, "--breaker-cooldown")?);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Overlay onto a runner config; absent flags keep its defaults.
    fn apply(&self, config: &mut RunnerConfig) {
        if let Some(p) = self.profile {
            config.profile = p;
        }
        if let Some(n) = self.retries {
            config.retries = n;
        }
        if let Some(d) = self.deadline {
            config.deadline = d;
        }
        if let Some(s) = self.seed {
            config.seed = s;
        }
        if let Some(x) = self.intensity {
            config.intensity = x;
        }
        if let Some(n) = self.breaker_cooldown {
            config.breaker_cooldown = n;
        }
    }

    /// Overlay onto a wire request; absent flags stay `None` so the
    /// daemon's per-request defaults fill them in. The breaker cooldown
    /// is not part of the protocol and is ignored here.
    fn fill_request(&self, req: &mut Request) {
        if let Some(p) = self.profile {
            req.profile = Some(p.label().to_owned());
        }
        if let Some(n) = self.retries {
            req.retries = Some(n);
        }
        if let Some(d) = self.deadline {
            req.deadline_ms = Some(d.as_millis() as u64);
        }
        if let Some(s) = self.seed {
            req.seed = Some(s);
        }
        if let Some(x) = self.intensity {
            req.intensity = Some(x);
        }
    }
}

// ---------------------------------------------------------------- run --

struct RunCli {
    config: RunnerConfig,
    shards: u32,
    schedule: Schedule,
    ids: Vec<ExperimentId>,
    report_only: bool,
    metrics_out: Option<String>,
    journal_out: Option<String>,
    report_out: Option<String>,
    trace_summary: bool,
    heartbeat: Option<String>,
    heartbeat_every: Duration,
}

fn cmd_run(args: Vec<String>) -> CmdResult {
    let Some(cli) = parse_run_args(args.into_iter())? else {
        return Ok(0); // --help
    };

    // Fail on unwritable output paths *before* spending minutes running
    // experiments: create/truncate each output file up front.
    for (path, what) in [
        (&cli.metrics_out, "metrics snapshot"),
        (&cli.journal_out, "event journal"),
        (&cli.report_out, "report artifact"),
        (&cli.heartbeat, "heartbeat file"),
    ] {
        if let Some(path) = path {
            preflight_writable(path, what)?;
        }
    }

    // Cooperative process-level fault injection: a dispatch parent under
    // --chaos-proc stamps this variable on the targeted (shard, attempt)
    // spawn. `kill` simulates a crash before any work or heartbeat;
    // `hang` wedges silently so liveness/deadline supervision must fire.
    match std::env::var(CHAOS_ENV).as_deref() {
        Ok("kill") => {
            eprintln!("chaos-proc: kill — exiting {CHAOS_KILL_CODE}");
            return Ok(CHAOS_KILL_CODE as u8);
        }
        Ok("hang") => {
            eprintln!("chaos-proc: hang — sleeping without heartbeats");
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        _ => {}
    }

    if let Some(path) = &cli.heartbeat {
        start_heartbeat(path.clone(), cli.heartbeat_every);
    }

    let specs: Vec<ExperimentSpec> = cli.ids.iter().map(|&id| spec_for(id)).collect();
    let run = Supervisor::builder()
        .config(cli.config)
        .shards(cli.shards)
        .schedule(cli.schedule)
        .build()
        .run(&specs);

    if !cli.report_only {
        for (id, row) in cli.ids.iter().zip(&run.report.experiments) {
            banner(&format!("{} — {}", id.code().to_uppercase(), id.title()));
            match run.outputs.get(id.code()) {
                Some(rendered) => println!("{rendered}"),
                None => eprintln!("{} {}: {}", id.code().to_uppercase(), row.status, row.message),
            }
        }
    }

    println!("\n{}", run.report.render());

    // The metrics table carries timings, so it would break the
    // byte-stability of --report-only output across identical runs; the
    // report-only mode is what CI diffs.
    if !cli.report_only {
        println!("\n{}", run.telemetry.render_metrics_table());
    }
    if cli.trace_summary {
        println!("\n{}", run.telemetry.render_trace_summary());
    }
    if let Some(path) = &cli.metrics_out {
        let json = run
            .telemetry
            .to_json()
            .map_err(|e| Failure::Fatal(format!("failed to serialize metrics snapshot: {e}")))?;
        write_file(path, &json, "metrics snapshot")?;
    }
    if let Some(path) = &cli.journal_out {
        let jsonl = run
            .telemetry
            .to_jsonl()
            .map_err(|e| Failure::Fatal(format!("failed to serialize event journal: {e}")))?;
        write_file(path, &jsonl, "event journal")?;
    }
    if let Some(path) = &cli.report_out {
        // Canonicalized: the artifact is the reproducible face of the run
        // (the serve cache equates it byte-for-byte across same-seed
        // runs); wall-clock durations live in render() and the metrics.
        let artifact = RunArtifact {
            report: run.report.clone(),
            outputs: run.outputs.clone(),
        }
        .canonicalized();
        let json = artifact
            .to_json()
            .map_err(|e| Failure::Fatal(format!("failed to serialize report artifact: {e}")))?;
        write_file(path, &json, "report artifact")?;
    }

    Ok(run.report.exit_code() as u8)
}

/// `Ok(None)` means `--help` was printed; there is nothing to run.
fn parse_run_args(args: impl Iterator<Item = String>) -> Result<Option<RunCli>, Failure> {
    let mut cli = RunCli {
        config: RunnerConfig::default(),
        shards: 1,
        schedule: Schedule::Static,
        ids: Vec::new(),
        report_only: false,
        metrics_out: None,
        journal_out: None,
        report_out: None,
        trace_summary: false,
        heartbeat: None,
        heartbeat_every: Duration::from_millis(100),
    };
    let mut flags = RunFlags::default();
    let mut args = args.peekable();

    while let Some(arg) = args.next() {
        if flags.try_consume(&arg, &mut args)? {
            continue;
        }
        let mut value = |flag: &str| -> Result<String, Failure> {
            args.next()
                .ok_or_else(|| Failure::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--shards" => {
                let n: u32 = parse_num(&value("--shards")?, "--shards")?;
                if n == 0 {
                    return Err(Failure::Usage("--shards must be positive".to_owned()));
                }
                cli.shards = n;
            }
            "--schedule" => {
                let v = value("--schedule")?;
                cli.schedule = Schedule::parse(&v).ok_or_else(|| {
                    Failure::Usage(format!("unknown schedule '{v}' (static|steal)"))
                })?;
            }
            "--report-only" => cli.report_only = true,
            "--metrics-out" => cli.metrics_out = Some(value("--metrics-out")?),
            "--journal-out" => cli.journal_out = Some(value("--journal-out")?),
            "--report-out" => cli.report_out = Some(value("--report-out")?),
            "--trace-summary" => cli.trace_summary = true,
            "--heartbeat" => cli.heartbeat = Some(value("--heartbeat")?),
            "--heartbeat-ms" => {
                let ms: u64 = parse_num(&value("--heartbeat-ms")?, "--heartbeat-ms")?;
                if ms == 0 {
                    return Err(Failure::Usage("--heartbeat-ms must be positive".to_owned()));
                }
                cli.heartbeat_every = Duration::from_millis(ms);
            }
            flag if flag.starts_with('-') => {
                return Err(Failure::Usage(format!("unknown option '{flag}'")));
            }
            id => {
                let parsed = ExperimentId::parse(id)
                    .ok_or_else(|| Failure::Usage(format!("unknown experiment id '{id}'")))?;
                if !cli.ids.contains(&parsed) {
                    cli.ids.push(parsed);
                }
            }
        }
    }

    flags.apply(&mut cli.config);
    canonicalize_ids(&mut cli.ids);
    Ok(Some(cli))
}

// ----------------------------------------------------------- dispatch --

struct DispatchCli {
    config: RunnerConfig,
    procs: u32,
    ids: Vec<ExperimentId>,
    dispatch: DispatchConfig,
    remote: RemoteOptions,
    heartbeat_every: Duration,
    keep_scratch: bool,
    report_only: bool,
    metrics_out: Option<String>,
    journal_out: Option<String>,
    trace_summary: bool,
}

fn cmd_dispatch(args: Vec<String>) -> CmdResult {
    let Some(cli) = parse_dispatch_args(args.into_iter())? else {
        return Ok(0); // --help
    };

    for (path, what) in [
        (&cli.metrics_out, "metrics snapshot"),
        (&cli.journal_out, "event journal"),
    ] {
        if let Some(path) = path {
            preflight_writable(path, what)?;
        }
    }

    let exe = std::env::current_exe()
        .map_err(|e| Failure::Fatal(format!("cannot locate own executable: {e}")))?;
    let plan = ShardPlan::new(cli.procs);
    let shards: Vec<ShardSpec> = (0..cli.procs)
        .map(|k| {
            let range = plan.range(k, cli.ids.len());
            ShardSpec {
                shard: k,
                spec_base: range.start as u64,
                codes: cli.ids[range].iter().map(|id| id.code().to_owned()).collect(),
            }
        })
        .collect();

    let config = cli.config;
    let heartbeat_ms = cli.heartbeat_every.as_millis().to_string();
    let build = |spec: &ShardSpec, paths: &humnet::resilience::ShardPaths| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("run")
            .arg("--shards")
            .arg("1")
            .arg("--fault-profile")
            .arg(config.profile.label())
            .arg("--retries")
            .arg(config.retries.to_string())
            .arg("--deadline-ms")
            .arg(config.deadline.as_millis().to_string())
            .arg("--seed")
            .arg(config.seed.to_string())
            .arg("--intensity")
            .arg(config.intensity.to_string())
            .arg("--breaker-cooldown")
            .arg(config.breaker_cooldown.to_string())
            .arg("--report-only")
            .arg("--metrics-out")
            .arg(&paths.metrics)
            .arg("--journal-out")
            .arg(&paths.journal)
            .arg("--report-out")
            .arg(&paths.report)
            .arg("--heartbeat")
            .arg(&paths.heartbeat)
            .arg("--heartbeat-ms")
            .arg(&heartbeat_ms)
            .args(&spec.codes);
        cmd
    };

    let outcome = if cli.remote.workers.is_empty() {
        dispatch(&cli.dispatch, &config, shards, build)
    } else {
        dispatch_remote(&cli.dispatch, &cli.remote, &config, shards, build)
    }
    .map_err(|e| Failure::Fatal(format!("dispatch failed: {e}")))?;

    print_dispatch(&cli, &outcome)?;

    if cli.keep_scratch || outcome.degraded() {
        eprintln!(
            "dispatch scratch kept at {}",
            cli.dispatch.scratch.display()
        );
    } else {
        let _ = std::fs::remove_dir_all(&cli.dispatch.scratch);
    }
    Ok(outcome.exit_code() as u8)
}

/// Render a finished dispatch exactly like `run` renders: per-experiment
/// outputs (missing ones flagged), the report, the dispatch verdict with
/// breaker reconciliation, then the optional metrics/journal artifacts.
fn print_dispatch(cli: &DispatchCli, outcome: &DispatchOutcome) -> Result<(), Failure> {
    let run = &outcome.run;
    if !cli.report_only {
        for id in &cli.ids {
            banner(&format!("{} — {}", id.code().to_uppercase(), id.title()));
            match run.outputs.get(id.code()) {
                Some(rendered) => println!("{rendered}"),
                None => {
                    let row = run.report.experiments.iter().find(|r| r.code == id.code());
                    match row {
                        Some(row) => eprintln!(
                            "{} {}: {}",
                            id.code().to_uppercase(),
                            row.status,
                            row.message
                        ),
                        None => eprintln!(
                            "{}: missing — its shard died and --allow-partial degraded the run",
                            id.code().to_uppercase()
                        ),
                    }
                }
            }
        }
    }

    println!("\n{}", run.report.render());
    print!("{}", outcome.render_summary());

    if !cli.report_only {
        println!("\n{}", run.telemetry.render_metrics_table());
    }
    if cli.trace_summary {
        println!("\n{}", run.telemetry.render_trace_summary());
    }
    if let Some(path) = &cli.metrics_out {
        let json = run
            .telemetry
            .to_json()
            .map_err(|e| Failure::Fatal(format!("failed to serialize metrics snapshot: {e}")))?;
        write_file(path, &json, "metrics snapshot")?;
    }
    if let Some(path) = &cli.journal_out {
        let jsonl = run
            .telemetry
            .to_jsonl()
            .map_err(|e| Failure::Fatal(format!("failed to serialize event journal: {e}")))?;
        write_file(path, &jsonl, "event journal")?;
    }
    Ok(())
}

fn parse_dispatch_args(args: impl Iterator<Item = String>) -> Result<Option<DispatchCli>, Failure> {
    let mut cli = DispatchCli {
        config: RunnerConfig::default(),
        procs: 0,
        ids: Vec::new(),
        dispatch: DispatchConfig::default(),
        remote: RemoteOptions::default(),
        heartbeat_every: Duration::from_millis(100),
        keep_scratch: false,
        report_only: false,
        metrics_out: None,
        journal_out: None,
        trace_summary: false,
    };
    cli.dispatch.chaos.clear();
    let mut flags = RunFlags::default();
    let mut args = args.peekable();

    while let Some(arg) = args.next() {
        if flags.try_consume(&arg, &mut args)? {
            continue;
        }
        let mut value = |flag: &str| -> Result<String, Failure> {
            args.next()
                .ok_or_else(|| Failure::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--procs" => {
                let n: u32 = parse_num(&value("--procs")?, "--procs")?;
                if n == 0 {
                    return Err(Failure::Usage("--procs must be positive".to_owned()));
                }
                cli.procs = n;
            }
            "--shard-retries" => {
                cli.dispatch.shard_retries =
                    parse_num(&value("--shard-retries")?, "--shard-retries")?;
            }
            "--shard-deadline-ms" => {
                let ms: u64 = parse_num(&value("--shard-deadline-ms")?, "--shard-deadline-ms")?;
                if ms == 0 {
                    return Err(Failure::Usage(
                        "--shard-deadline-ms must be positive".to_owned(),
                    ));
                }
                cli.dispatch.shard_deadline = Duration::from_millis(ms);
            }
            "--liveness-ms" => {
                // 0 is allowed: it disables heartbeat liveness checking and
                // leaves only the shard deadline.
                let ms: u64 = parse_num(&value("--liveness-ms")?, "--liveness-ms")?;
                cli.dispatch.liveness = Duration::from_millis(ms);
            }
            "--heartbeat-ms" => {
                let ms: u64 = parse_num(&value("--heartbeat-ms")?, "--heartbeat-ms")?;
                if ms == 0 {
                    return Err(Failure::Usage("--heartbeat-ms must be positive".to_owned()));
                }
                cli.heartbeat_every = Duration::from_millis(ms);
            }
            "--allow-partial" => cli.dispatch.allow_partial = true,
            "--chaos-proc" => {
                let v = value("--chaos-proc")?;
                let chaos = ChaosProc::parse(&v).ok_or_else(|| {
                    Failure::Usage(format!(
                        "bad --chaos-proc '{v}' (kill:<shard>[:attempt] | hang:<shard>[:attempt])"
                    ))
                })?;
                cli.dispatch.chaos.push(chaos);
            }
            "--workers" => {
                // Comma-separated and repeatable; order matters (chaos-net
                // and retry rotation address workers by index).
                for addr in value("--workers")?.split(',') {
                    let addr = addr.trim();
                    if addr.is_empty() {
                        return Err(Failure::Usage(
                            "--workers needs host:port[,host:port...]".to_owned(),
                        ));
                    }
                    cli.remote.workers.push(addr.to_owned());
                }
            }
            "--chaos-net" => {
                let v = value("--chaos-net")?;
                let chaos = ChaosNet::parse(&v).ok_or_else(|| {
                    Failure::Usage(format!(
                        "bad --chaos-net '{v}' (kill:<worker>[:lease] | stall:<worker>[:lease] \
                         | garble:<worker>[:lease])"
                    ))
                })?;
                cli.remote.chaos.push(chaos);
            }
            "--no-failover" => cli.remote.local_failover = false,
            "--connect-timeout-ms" => {
                let ms: u64 = parse_num(&value("--connect-timeout-ms")?, "--connect-timeout-ms")?;
                if ms == 0 {
                    return Err(Failure::Usage(
                        "--connect-timeout-ms must be positive".to_owned(),
                    ));
                }
                cli.remote.connect_timeout = Duration::from_millis(ms);
            }
            "--scratch" => {
                cli.dispatch.scratch = std::path::PathBuf::from(value("--scratch")?);
            }
            "--keep-scratch" => cli.keep_scratch = true,
            "--report-only" => cli.report_only = true,
            "--metrics-out" => cli.metrics_out = Some(value("--metrics-out")?),
            "--journal-out" => cli.journal_out = Some(value("--journal-out")?),
            "--trace-summary" => cli.trace_summary = true,
            flag if flag.starts_with('-') => {
                return Err(Failure::Usage(format!("unknown option '{flag}'")));
            }
            id => {
                let parsed = ExperimentId::parse(id)
                    .ok_or_else(|| Failure::Usage(format!("unknown experiment id '{id}'")))?;
                if !cli.ids.contains(&parsed) {
                    cli.ids.push(parsed);
                }
            }
        }
    }

    if cli.procs == 0 {
        return Err(Failure::Usage(
            "dispatch needs --procs <K> (number of child processes)".to_owned(),
        ));
    }
    if cli.remote.workers.is_empty() {
        if !cli.remote.chaos.is_empty() {
            return Err(Failure::Usage(
                "--chaos-net needs --workers (it injects faults on the worker wire)".to_owned(),
            ));
        }
        if !cli.remote.local_failover {
            return Err(Failure::Usage(
                "--no-failover needs --workers (local dispatch has nothing to fail over from)"
                    .to_owned(),
            ));
        }
    }
    flags.apply(&mut cli.config);
    canonicalize_ids(&mut cli.ids);
    // The retry backoff jitter stream derives from the run seed, like
    // every other deterministic decision.
    cli.dispatch.seed = cli.config.seed;
    cli.dispatch.keep_scratch = cli.keep_scratch;
    Ok(Some(cli))
}

// -------------------------------------------------------------- worker --

/// Long-lived remote shard worker: accept shard-slice leases over the
/// line-delimited JSON worker protocol, execute each on the warm
/// in-process pool (exactly what a local dispatch child runs), stream
/// inline heartbeats, and answer with the canonical per-shard artifact.
/// A `dispatch --workers` parent on any machine can lease against it.
fn cmd_worker(args: Vec<String>) -> CmdResult {
    let mut cfg = WorkerConfig::default();
    let mut ready_file = None;
    let mut flags = RunFlags::default();
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        if flags.try_consume(&arg, &mut args)? {
            continue;
        }
        let mut value = |flag: &str| -> Result<String, Failure> {
            args.next()
                .ok_or_else(|| Failure::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(0);
            }
            "--addr" => cfg.addr = value("--addr")?,
            "--heartbeat-ms" => {
                let ms: u64 = parse_num(&value("--heartbeat-ms")?, "--heartbeat-ms")?;
                if ms == 0 {
                    return Err(Failure::Usage("--heartbeat-ms must be positive".to_owned()));
                }
                cfg.heartbeat = Duration::from_millis(ms);
            }
            "--ready-file" => ready_file = Some(value("--ready-file")?),
            flag if flag.starts_with('-') => {
                return Err(Failure::Usage(format!("unknown option '{flag}'")));
            }
            stray => {
                return Err(Failure::Usage(format!(
                    "worker takes no positional arguments (got '{stray}')"
                )));
            }
        }
    }

    // The lease overlays its own (seed, profile, intensity, retries,
    // deadline, breaker-cooldown) tuple; these flags only set the
    // defaults a sparse lease falls back to.
    flags.apply(&mut cfg.runner);

    // Startup poison for partition tests that have no cooperating
    // dispatcher: misbehave on the n-th accepted lease.
    if let Ok(spec) = std::env::var(CHAOS_NET_ENV) {
        cfg.chaos = Some(WorkerChaos::parse(&spec).ok_or_else(|| {
            Failure::Fatal(format!(
                "bad {CHAOS_NET_ENV} value '{spec}' (kill[:n] | stall[:n] | garble[:n])"
            ))
        })?);
        eprintln!("worker: chaos poison armed from {CHAOS_NET_ENV}: {spec}");
    }

    let worker =
        Worker::bind(cfg).map_err(|e| Failure::Fatal(format!("worker: cannot bind: {e}")))?;
    let addr = worker
        .local_addr()
        .map_err(|e| Failure::Fatal(format!("worker: cannot read bound address: {e}")))?;
    if let Some(path) = &ready_file {
        write_file(path, &addr.to_string(), "ready file")?;
    }
    eprintln!("worker: listening on {addr}");

    let factory = Arc::new(|code: &str| ExperimentId::parse(code).map(spec_for));
    let summary = worker
        .run(factory)
        .map_err(|e| Failure::Fatal(format!("worker: {e}")))?;
    eprintln!(
        "worker: drained — {} leases ({} completed, {} faulted)",
        summary.leases, summary.completed, summary.faulted
    );
    Ok(0)
}

// --------------------------------------------------------------- list --

fn cmd_list(args: Vec<String>) -> CmdResult {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(0);
    }
    if let Some(stray) = args.first() {
        return Err(Failure::Usage(format!(
            "list takes no arguments (got '{stray}')"
        )));
    }
    let mut table = TextTable::new(&["code", "family", "faults", "experiment"]);
    for id in ExperimentId::ALL {
        table.row(vec![
            id.code().to_owned(),
            id.family().to_owned(),
            if id.fault_capable() { "yes" } else { "-" }.to_owned(),
            id.title().to_owned(),
        ]);
    }
    println!("{}", table.render());
    println!("{} experiments; run with: experiments run [ID...]", ExperimentId::ALL.len());
    Ok(0)
}

// ------------------------------------------------------ merge-metrics --

fn cmd_merge_metrics(args: Vec<String>) -> CmdResult {
    let mut paths = Vec::new();
    let mut out = None;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(0);
            }
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => return Err(Failure::Usage("--out needs a value".to_owned())),
            },
            flag if flag.starts_with('-') => {
                return Err(Failure::Usage(format!("unknown option '{flag}'")));
            }
            path => paths.push(path.to_owned()),
        }
    }
    if paths.is_empty() {
        return Err(Failure::Usage(
            "merge-metrics needs at least one snapshot path".to_owned(),
        ));
    }

    let mut merged = TelemetrySnapshot::default();
    for path in &paths {
        let text = read_file(path, "metrics snapshot")?;
        // Scope "" leaves run-level events unscoped, exactly like the
        // sharded supervisor's own merge.
        let snap = TelemetrySnapshot::from_json(&text).map_err(|e| {
            Failure::Fatal(format!("failed to parse metrics snapshot {path}: {e}"))
        })?;
        merged.merge(&snap, "");
    }
    let json = merged
        .to_json()
        .map_err(|e| Failure::Fatal(format!("failed to serialize merged snapshot: {e}")))?;
    match &out {
        Some(path) => write_file(path, &json, "merged snapshot")?,
        None => println!("{json}"),
    }
    eprintln!(
        "merged {} snapshots: {} counters, {} events",
        paths.len(),
        merged.metrics.counters.len(),
        merged.events.len()
    );
    Ok(0)
}

// -------------------------------------------------------------- replay --

fn cmd_replay(args: Vec<String>) -> CmdResult {
    let mut path = None;
    for arg in &args {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(0);
            }
            flag if flag.starts_with('-') => {
                return Err(Failure::Usage(format!("unknown option '{flag}'")));
            }
            p if path.is_none() => path = Some(p.to_owned()),
            stray => {
                return Err(Failure::Usage(format!(
                    "replay takes one journal path (got '{stray}')"
                )));
            }
        }
    }
    let Some(path) = path else {
        return Err(Failure::Usage(
            "replay needs a journal path (JSONL from --journal-out)".to_owned(),
        ));
    };

    let text = read_file(&path, "event journal")?;
    let events = journal::from_jsonl(&text)
        .map_err(|e| Failure::Fatal(format!("failed to parse event journal {path}: {e}")))?;
    let factory = |code: &str| ExperimentId::parse(code).map(spec_for);
    let report = replay::replay(&events, &factory)
        .map_err(|e| Failure::Fatal(format!("cannot replay {path}: {e}")))?;
    print!("{}", report.render());
    Ok(report.exit_code() as u8)
}

// -------------------------------------------------------------- serve --

const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7077";

fn cmd_serve(args: Vec<String>) -> CmdResult {
    let mut cfg = ServeConfig::default();
    cfg.addr = DEFAULT_SERVE_ADDR.to_owned();
    let mut ready_file = None;
    let mut flags = RunFlags::default();
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        if flags.try_consume(&arg, &mut args)? {
            continue;
        }
        let mut value = |flag: &str| -> Result<String, Failure> {
            args.next()
                .ok_or_else(|| Failure::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(0);
            }
            "--addr" => cfg.addr = value("--addr")?,
            "--cache-dir" => cfg.cache_dir = std::path::PathBuf::from(value("--cache-dir")?),
            "--cache-max-entries" => {
                cfg.cache_max_entries =
                    parse_num(&value("--cache-max-entries")?, "--cache-max-entries")?;
            }
            "--cache-max-age-secs" => {
                // 0 (the default) keeps entries forever — age-out only
                // makes sense once code-rev granularity is too coarse.
                let secs: u64 = parse_num(&value("--cache-max-age-secs")?, "--cache-max-age-secs")?;
                cfg.cache_max_age = Duration::from_secs(secs);
            }
            "--queue-depth" => {
                cfg.queue_depth = parse_num(&value("--queue-depth")?, "--queue-depth")?;
            }
            "--concurrency" => {
                let n: usize = parse_num(&value("--concurrency")?, "--concurrency")?;
                if n == 0 {
                    return Err(Failure::Usage("--concurrency must be positive".to_owned()));
                }
                cfg.concurrency = n;
            }
            "--handlers" => {
                let n: usize = parse_num(&value("--handlers")?, "--handlers")?;
                if n == 0 {
                    return Err(Failure::Usage("--handlers must be positive".to_owned()));
                }
                cfg.handlers = n;
            }
            "--hold-ms" => {
                // Deterministic-delay knob for overload tests, like
                // --chaos-proc is for dispatch tests.
                cfg.hold = Duration::from_millis(parse_num(&value("--hold-ms")?, "--hold-ms")?);
            }
            "--ready-file" => ready_file = Some(value("--ready-file")?),
            flag if flag.starts_with('-') => {
                return Err(Failure::Usage(format!("unknown option '{flag}'")));
            }
            stray => {
                return Err(Failure::Usage(format!(
                    "serve takes no positional arguments (got '{stray}')"
                )));
            }
        }
    }

    flags.apply(&mut cfg.runner);
    install_signal_handlers();
    let factory = Arc::new(|code: &str| ExperimentId::parse(code).map(spec_for));
    let server = Server::bind(cfg, factory)
        .map_err(|e| Failure::Fatal(format!("serve: cannot start: {e}")))?;
    let addr = server.local_addr();
    let rehydrated = server.rehydrated();
    // The ready file lets scripts (and tests) bind to port 0 and discover
    // the actual address without racing the daemon's startup.
    if let Some(path) = &ready_file {
        write_file(path, &addr.to_string(), "ready file")?;
    }
    eprintln!(
        "serve: listening on {addr} ({} cache entries rehydrated, {} evicted, {} stale, {} trimmed)",
        rehydrated.loaded, rehydrated.evicted, rehydrated.stale, rehydrated.trimmed
    );

    let summary = server
        .run()
        .map_err(|e| Failure::Fatal(format!("serve: {e}")))?;
    let counters = &summary.stats.metrics.counters;
    let n = |name: &str| counters.get(name).copied().unwrap_or(0);
    eprintln!(
        "serve: drained — {} requests ({} hits, {} misses, {} shed, {} errors), {} cache entries",
        n("serve.requests"),
        n("serve.cache_hit"),
        n("serve.cache_miss"),
        n("serve.shed"),
        n("serve.error"),
        summary.cache_entries
    );
    Ok(0)
}

// -------------------------------------------------------------- query --

fn cmd_query(args: Vec<String>) -> CmdResult {
    let mut addr = DEFAULT_SERVE_ADDR.to_owned();
    let mut req = Request::stats();
    req.cmd.clear();
    let mut artifact_out = None;
    let mut timeout = Duration::from_secs(120);
    let mut flags = RunFlags::default();
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        if flags.try_consume(&arg, &mut args)? {
            continue;
        }
        let mut value = |flag: &str| -> Result<String, Failure> {
            args.next()
                .ok_or_else(|| Failure::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(0);
            }
            "--addr" => addr = value("--addr")?,
            "--stats" | "--shutdown" => {
                if !req.cmd.is_empty() {
                    return Err(Failure::Usage(
                        "query takes one of: an experiment id, --stats, or --shutdown".to_owned(),
                    ));
                }
                req.cmd = arg.trim_start_matches('-').to_owned();
            }
            "--timeout-ms" => {
                let ms: u64 = parse_num(&value("--timeout-ms")?, "--timeout-ms")?;
                if ms == 0 {
                    return Err(Failure::Usage("--timeout-ms must be positive".to_owned()));
                }
                timeout = Duration::from_millis(ms);
            }
            "--artifact-out" => artifact_out = Some(value("--artifact-out")?),
            flag if flag.starts_with('-') => {
                return Err(Failure::Usage(format!("unknown option '{flag}'")));
            }
            id => {
                if !req.cmd.is_empty() {
                    return Err(Failure::Usage(
                        "query takes one of: an experiment id, --stats, or --shutdown".to_owned(),
                    ));
                }
                let parsed = ExperimentId::parse(id)
                    .ok_or_else(|| Failure::Usage(format!("unknown experiment id '{id}'")))?;
                req.cmd = "run".to_owned();
                req.experiment = Some(parsed.code().to_owned());
            }
        }
    }
    if req.cmd.is_empty() {
        return Err(Failure::Usage(
            "query needs an experiment id, --stats, or --shutdown".to_owned(),
        ));
    }
    flags.fill_request(&mut req);
    if let Some(path) = &artifact_out {
        preflight_writable(path, "artifact")?;
    }

    // One-shot today, but routed through the pool so the CLI exercises
    // the exact checkout/checkin path the ramp workers run at scale.
    let pool = ClientPool::new(&addr, timeout, 1);
    let mut client = pool
        .checkout()
        .map_err(|e| Failure::Fatal(format!("query: {e}")))?;
    let resp = client
        .request(&req)
        .map_err(|e| Failure::Fatal(format!("query: {e}")))?;
    pool.checkin(client);
    match resp.status.as_str() {
        "hit" | "miss" => {
            eprintln!(
                "query: {} key={} rev={}",
                resp.status,
                resp.key.as_deref().unwrap_or("?"),
                resp.code_rev.as_deref().unwrap_or("?")
            );
            let artifact = resp.artifact.unwrap_or_default();
            match &artifact_out {
                Some(path) => write_file(path, &artifact, "artifact")?,
                None => println!("{artifact}"),
            }
            Ok(0)
        }
        "stats" => {
            println!("{}", resp.stats.unwrap_or_default());
            Ok(0)
        }
        "ok" => {
            eprintln!("query: {}", resp.message.unwrap_or_default());
            Ok(0)
        }
        "overloaded" => {
            eprintln!(
                "query: daemon overloaded: {}",
                resp.message.unwrap_or_default()
            );
            Ok(3)
        }
        _ => {
            eprintln!("query: server error: {}", resp.message.unwrap_or_default());
            Ok(1)
        }
    }
}

// --------------------------------------------------------------- ramp --

/// Closed-loop capacity search: drive a daemon with rising open-loop
/// load until an SLO breaks, bisect to the max sustainable RPS, and
/// write the code-rev-stamped `CAPACITY.json`. Without `--addr` the
/// command spawns its own in-process daemon on a loopback port so a bare
/// `experiments ramp` measures this build end to end.
fn cmd_ramp(args: Vec<String>) -> CmdResult {
    let mut target_addr: Option<String> = None;
    let mut plan = RampPlan::default();
    let mut workers: usize = 4;
    let mut mix_seeds: u64 = 8;
    let mut ids: Vec<ExperimentId> = Vec::new();
    let mut capacity_out: Option<String> = None;
    let mut history_file = "CAPACITY_HISTORY.jsonl".to_owned();
    let mut trend_only = false;
    let mut timeout = Duration::from_secs(10);
    let mut cfg = ServeConfig::default();
    cfg.addr = "127.0.0.1:0".to_owned();
    let mut cache_dir_set = false;
    let mut flags = RunFlags::default();
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        if flags.try_consume(&arg, &mut args)? {
            continue;
        }
        let mut value = |flag: &str| -> Result<String, Failure> {
            args.next()
                .ok_or_else(|| Failure::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(0);
            }
            "--addr" => target_addr = Some(value("--addr")?),
            "--workers" => {
                let n: usize = parse_num(&value("--workers")?, "--workers")?;
                if n == 0 {
                    return Err(Failure::Usage("--workers must be positive".to_owned()));
                }
                workers = n;
            }
            "--initial-rps" => {
                plan.initial_rps = parse_pos_f64(&value("--initial-rps")?, "--initial-rps")?;
            }
            "--increment-rps" => {
                plan.increment_rps = parse_pos_f64(&value("--increment-rps")?, "--increment-rps")?;
            }
            "--max-rps" => {
                plan.max_rps = parse_pos_f64(&value("--max-rps")?, "--max-rps")?;
            }
            "--step-ms" => {
                let ms: u64 = parse_num(&value("--step-ms")?, "--step-ms")?;
                if ms == 0 {
                    return Err(Failure::Usage("--step-ms must be positive".to_owned()));
                }
                plan.step_duration = Duration::from_millis(ms);
            }
            "--bisect-iters" => {
                plan.bisect_iters = parse_num(&value("--bisect-iters")?, "--bisect-iters")?;
            }
            "--slo-p99-ms" => {
                let ms: u64 = parse_num(&value("--slo-p99-ms")?, "--slo-p99-ms")?;
                if ms == 0 {
                    return Err(Failure::Usage("--slo-p99-ms must be positive".to_owned()));
                }
                plan.slo.max_p99_us = ms * 1000;
            }
            "--slo-max-fail" => {
                let x = parse_frac(&value("--slo-max-fail")?, "--slo-max-fail")?;
                plan.slo.max_fail_frac = x;
            }
            "--slo-min-achieved" => {
                let x = parse_frac(&value("--slo-min-achieved")?, "--slo-min-achieved")?;
                plan.slo.min_achieved_frac = x;
            }
            "--mix-seeds" => {
                // 0 is meaningful: a fresh seed per request, so every
                // request is a cache miss (worst-case load).
                mix_seeds = parse_num(&value("--mix-seeds")?, "--mix-seeds")?;
            }
            "--capacity-out" => capacity_out = Some(value("--capacity-out")?),
            "--history-file" => history_file = value("--history-file")?,
            "--trend" => trend_only = true,
            "--timeout-ms" => {
                let ms: u64 = parse_num(&value("--timeout-ms")?, "--timeout-ms")?;
                if ms == 0 {
                    return Err(Failure::Usage("--timeout-ms must be positive".to_owned()));
                }
                timeout = Duration::from_millis(ms);
            }
            "--cache-dir" => {
                cfg.cache_dir = std::path::PathBuf::from(value("--cache-dir")?);
                cache_dir_set = true;
            }
            "--cache-max-entries" => {
                cfg.cache_max_entries =
                    parse_num(&value("--cache-max-entries")?, "--cache-max-entries")?;
            }
            "--queue-depth" => {
                cfg.queue_depth = parse_num(&value("--queue-depth")?, "--queue-depth")?;
            }
            "--concurrency" => {
                let n: usize = parse_num(&value("--concurrency")?, "--concurrency")?;
                if n == 0 {
                    return Err(Failure::Usage("--concurrency must be positive".to_owned()));
                }
                cfg.concurrency = n;
            }
            "--handlers" => {
                let n: usize = parse_num(&value("--handlers")?, "--handlers")?;
                if n == 0 {
                    return Err(Failure::Usage("--handlers must be positive".to_owned()));
                }
                cfg.handlers = n;
            }
            "--hold-ms" => {
                cfg.hold = Duration::from_millis(parse_num(&value("--hold-ms")?, "--hold-ms")?);
            }
            flag if flag.starts_with('-') => {
                return Err(Failure::Usage(format!("unknown option '{flag}'")));
            }
            id => {
                let parsed = ExperimentId::parse(id)
                    .ok_or_else(|| Failure::Usage(format!("unknown experiment id '{id}'")))?;
                if !ids.contains(&parsed) {
                    ids.push(parsed);
                }
            }
        }
    }
    if trend_only {
        // Render the per-revision capacity ledger and stop — no daemon,
        // no load, no appends.
        let entries = read_history(std::path::Path::new(&history_file)).map_err(|e| {
            Failure::Fatal(format!("ramp: cannot read capacity history {history_file}: {e}"))
        })?;
        println!("{}", render_trend(&entries));
        return Ok(0);
    }
    if plan.max_rps < plan.initial_rps {
        return Err(Failure::Usage(
            "--max-rps must be >= --initial-rps".to_owned(),
        ));
    }
    if ids.is_empty() {
        // f1 is the cheapest experiment: the default mix measures daemon
        // overhead, not simulation cost.
        ids.push(ExperimentId::parse("f1").expect("f1 exists"));
    }
    if let Some(path) = &capacity_out {
        preflight_writable(path, "capacity report")?;
    }
    let mix = RequestMix::new(
        ids.iter().map(|id| id.code().to_owned()).collect(),
        flags.profile.unwrap_or(FaultProfile::None).label(),
        flags.intensity.unwrap_or(1.0),
        mix_seeds,
    );

    // Self-spawn unless --addr names a daemon that is already running.
    let mut spawned = None;
    let addr = match target_addr {
        Some(addr) => addr,
        None => {
            if !cache_dir_set {
                // A fresh per-process cache dir: the measured hit-rate is
                // the mix's, not whatever a previous run left on disk.
                cfg.cache_dir =
                    std::env::temp_dir().join(format!("humnet-ramp-{}", std::process::id()));
                let _ = std::fs::remove_dir_all(&cfg.cache_dir);
            }
            if cfg.handlers == 0 {
                // Every ramp worker parks a persistent connection on a
                // handler; size the pool so none of them starves.
                cfg.handlers = workers + cfg.queue_depth + cfg.concurrency + 2;
            }
            flags.apply(&mut cfg.runner);
            let factory = Arc::new(|code: &str| ExperimentId::parse(code).map(spec_for));
            let server = Server::bind(cfg, factory)
                .map_err(|e| Failure::Fatal(format!("ramp: cannot start daemon: {e}")))?;
            let addr = server.local_addr().to_string();
            let stop = server.shutdown_handle();
            let handle = std::thread::spawn(move || server.run());
            eprintln!("ramp: spawned in-process daemon on {addr}");
            spawned = Some((handle, stop));
            addr
        }
    };

    let result = run_ramp(&addr, &plan, workers, &mix, timeout);

    if let Some((handle, stop)) = spawned {
        // Drain over the wire; the stop flag is the fallback if the
        // daemon can no longer answer a shutdown request.
        let _ = ServeClient::connect(&addr, Duration::from_secs(5)).and_then(|mut c| c.shutdown());
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        match handle.join() {
            Ok(Ok(summary)) => {
                let counters = &summary.stats.metrics.counters;
                let n = |name: &str| counters.get(name).copied().unwrap_or(0);
                eprintln!(
                    "ramp: daemon drained — {} requests ({} hits, {} misses, {} shed, {} evicted)",
                    n("serve.requests"),
                    n("serve.cache_hit"),
                    n("serve.cache_miss"),
                    n("serve.shed"),
                    n("serve.evicted"),
                );
            }
            Ok(Err(e)) => eprintln!("ramp: daemon exited with error: {e}"),
            Err(_) => eprintln!("ramp: daemon thread panicked"),
        }
        if !cache_dir_set {
            let _ = std::fs::remove_dir_all(
                std::env::temp_dir().join(format!("humnet-ramp-{}", std::process::id())),
            );
        }
    }

    let report = result.map_err(|e| Failure::Fatal(format!("ramp: {e}")))?;
    println!("{}", report.render());
    if let Some(path) = &capacity_out {
        let json = report
            .to_json()
            .map_err(|e| Failure::Fatal(format!("failed to serialize capacity report: {e}")))?;
        write_file(path, &json, "capacity report")?;
        eprintln!("ramp: capacity report written to {path}");
    }
    // Best-effort per-revision ledger: one line per code-rev, duplicates
    // skipped, so repeated ramps of the same build stay idempotent. A
    // write failure is worth a warning, not a failed ramp.
    match append_history(std::path::Path::new(&history_file), &report) {
        Ok(true) => eprintln!(
            "ramp: capacity trend appended to {history_file} (code-rev {})",
            report.code_rev
        ),
        Ok(false) => eprintln!(
            "ramp: capacity trend already records code-rev {} — {history_file} unchanged",
            report.code_rev
        ),
        Err(e) => eprintln!("ramp: could not append capacity history to {history_file}: {e}"),
    }
    Ok(0)
}

/// A strictly positive finite float CLI value.
fn parse_pos_f64(v: &str, flag: &str) -> Result<f64, Failure> {
    let x: f64 = v
        .parse()
        .map_err(|_| Failure::Usage(format!("bad {flag} value '{v}'")))?;
    if !x.is_finite() || x <= 0.0 {
        return Err(Failure::Usage(format!("{flag} must be a positive number")));
    }
    Ok(x)
}

/// A fraction in [0, 1].
fn parse_frac(v: &str, flag: &str) -> Result<f64, Failure> {
    let x: f64 = v
        .parse()
        .map_err(|_| Failure::Usage(format!("bad {flag} value '{v}'")))?;
    if !x.is_finite() || !(0.0..=1.0).contains(&x) {
        return Err(Failure::Usage(format!("{flag} must be in [0, 1]")));
    }
    Ok(x)
}

// ------------------------------------------------------------- shared --

/// The supervised-runner job for one experiment — the single definition
/// both `run` and `replay` execute (and, via self-invocation, every
/// dispatch child), so a replayed or dispatched experiment is driven by
/// exactly the code that produced the capture.
fn spec_for(id: ExperimentId) -> ExperimentSpec {
    ExperimentSpec::new(id.code(), id.title(), id.family(), move |plan, tel| {
        id.run_instrumented(plan, tel)
            .map(|r| JobOutput {
                rendered: r.rendered,
                faults_injected: r.faults_injected,
            })
            .map_err(|e| Box::new(e) as JobError)
    })
}

/// Default to every experiment; run explicit subsets in canonical order
/// regardless of CLI order (contiguous shard slices depend on it).
fn canonicalize_ids(ids: &mut Vec<ExperimentId>) {
    if ids.is_empty() {
        *ids = ExperimentId::ALL.to_vec();
    } else {
        ids.sort_by_key(|id| ExperimentId::ALL.iter().position(|a| a == id));
    }
}

fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, Failure> {
    v.parse()
        .map_err(|_| Failure::Usage(format!("bad {flag} value '{v}'")))
}

/// Append a heartbeat line to `path` every `every` until process exit, on
/// a detached thread. The dispatch parent only watches the file *grow* —
/// the contents are for humans debugging a shard.
fn start_heartbeat(path: String, every: Duration) {
    let _ = std::thread::Builder::new()
        .name("humnet-heartbeat".to_owned())
        .spawn(move || {
            let mut beat = 0u64;
            loop {
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .append(true)
                    .create(true)
                    .open(&path)
                {
                    use std::io::Write as _;
                    let _ = writeln!(f, "hb {beat} pid={}", std::process::id());
                }
                beat += 1;
                std::thread::sleep(every);
            }
        });
}

/// Create/truncate `path` now so an unwritable destination fails the
/// process (exit 2) before any experiment runs, not after.
fn preflight_writable(path: &str, what: &str) -> Result<(), Failure> {
    std::fs::File::create(path)
        .map(drop)
        .map_err(|e| Failure::Fatal(format!("cannot write {what} to {path}: {e}")))
}

fn read_file(path: &str, what: &str) -> Result<String, Failure> {
    std::fs::read_to_string(path)
        .map_err(|e| Failure::Fatal(format!("failed to read {what} from {path}: {e}")))
}

fn write_file(path: &str, contents: &str, what: &str) -> Result<(), Failure> {
    std::fs::write(path, contents)
        .map_err(|e| Failure::Fatal(format!("failed to write {what} to {path}: {e}")))
}

const USAGE: &str = "\
usage: experiments <COMMAND> [ARGS]
       experiments [OPTIONS] [ID...]        (alias for `run`)

Commands:
  run [OPTIONS] [ID...]          run experiments under the supervisor
  dispatch --procs <K> [OPTIONS] [ID...]
                                 partition the run across K supervised child
                                 processes (crash retry, heartbeats, graceful
                                 partial-result degradation); with --workers
                                 the shards lease to remote worker daemons
                                 over TCP instead of local children
  worker [OPTIONS]               long-lived remote shard worker: accept shard
                                 leases over line-delimited JSON on TCP,
                                 execute them on the warm in-process pool,
                                 heartbeat inline, answer with the canonical
                                 per-shard artifact
  list                           print the experiment catalog (codes, families, titles)
  merge-metrics <PATH>... [--out <PATH>]
                                 merge telemetry snapshots (e.g. per-shard
                                 --metrics-out files) into one JSON snapshot
  replay <JOURNAL.jsonl>         re-execute a captured run and diff canonical events
  serve [OPTIONS]                long-lived daemon: answer run requests over
                                 line-delimited JSON on TCP, from a
                                 content-addressed result cache (misses execute
                                 on the warm in-process pool)
  query [OPTIONS] <ID> | --stats | --shutdown
                                 one request against a running daemon
  ramp [OPTIONS] [ID...]         closed-loop capacity search: drive a daemon
                                 (self-spawned unless --addr) with rising
                                 open-loop load, stop at the first SLO break,
                                 bisect to the max sustainable RPS, and report

IDs (default: all, in EXPERIMENTS.md order):
  f1 t1 f2 t2 f3 f4 t3 f5 t4 f6 t5 f7 f8 f9 t6 t7

Shared run-config options (accepted by run, dispatch, serve, query and ramp —
one validation path; each command overlays them on its own defaults):
  --fault-profile <none|churn|outage|chaos>  fault mix to inject (default none)
  --retries <N>        extra attempts per experiment (default 1)
  --deadline-ms <N>    per-attempt wall-clock deadline (default 30000)
  --seed <N>           seed for fault plans and retry jitter (default 42)
  --intensity <X>      multiplier on the profile's fault rates (default 1.0)
  --breaker-cooldown <N>
                       admit one half-open probe after N outcomes recorded
                       against an open breaker; 0 latches open (default 0;
                       not part of the wire protocol, so query ignores it)

Run options (plus the shared options above):
  --shards <N>         partition the run across N in-process shards; the
                       merged canonical output is shard-invariant (default 1)
  --schedule <static|steal>
                       how shards receive work: fixed contiguous slices, or
                       a work-stealing queue that rebalances skewed costs;
                       the canonical output is identical (default static)
  --report-only        print only the final run report
  --metrics-out <PATH> write the telemetry snapshot (metrics + spans) as JSON
  --journal-out <PATH> write the structured event journal as JSONL
  --report-out <PATH>  write the report+outputs artifact as JSON (what a
                       dispatch child hands back to its parent)
  --heartbeat <PATH>   append a liveness line to PATH while running
  --heartbeat-ms <N>   heartbeat period (default 100)
  --trace-summary      print the per-span flame summary after the report
  --help               show this help

Dispatch options (shared options above plus the run options, minus --shards,
--schedule, --report-out and --heartbeat, which dispatch manages itself):
  --procs <K>          number of child processes (required); the merged
                       canonical output is byte-identical to the in-process
                       1-shard run of the same seed
  --shard-retries <N>  extra spawn attempts per crashed/hung shard (default 1)
  --shard-deadline-ms <N>
                       per-attempt wall-clock budget for one child (default 120000)
  --liveness-ms <N>    kill a child whose heartbeat file stalls this long;
                       0 disables liveness checking (default 10000)
  --allow-partial      degrade to a partial merged result (exit 3) instead of
                       failing when a shard exhausts its retries
  --chaos-proc <kill:<shard>[:attempt] | hang:<shard>[:attempt]>
                       deterministic process-fault injection (repeatable)
  --scratch <DIR>      artifact scratch directory (default under the temp dir)
  --keep-scratch       keep per-shard artifacts and child logs on success
  --workers <HOST:PORT[,HOST:PORT...]>
                       lease shards to these remote worker daemons (in order;
                       repeatable) instead of spawning local children; the
                       merged canonical output stays byte-identical to the
                       in-process run, failed leases retry on the next
                       surviving worker with the same deterministic backoff
  --chaos-net <kill:<worker>[:lease] | stall:<worker>[:lease] | garble:<worker>[:lease]>
                       deterministic wire-fault injection against worker
                       <worker>'s <lease>-th lease: drop the connection,
                       go silent, or emit a corrupt frame (repeatable;
                       needs --workers)
  --no-failover        give up after the remote retries instead of failing
                       the shard over to a local child process
  --connect-timeout-ms <N>
                       TCP connect budget per lease attempt (default 5000)

Worker options (plus the shared options above, which set the defaults a
sparse lease falls back to — each lease overlays its own run tuple):
  --addr <HOST:PORT>   listen address (default 127.0.0.1:0 — a free port;
                       see --ready-file)
  --heartbeat-ms <N>   inline heartbeat cadence while a lease executes
                       (default 100)
  --ready-file <PATH>  write the bound address here once listening
  The HUMNET_CHAOS_NET env var (kill[:n] | stall[:n] | garble[:n]) arms a
  startup poison that fires on the n-th accepted lease, for partition tests
  without a cooperating dispatcher. The worker drains and exits when a
  dispatcher sends a shutdown frame.

Serve options (plus the shared options above, which set the daemon's
per-request defaults):
  --addr <HOST:PORT>   listen address (default 127.0.0.1:7077; port 0 picks
                       a free port — see --ready-file)
  --cache-dir <DIR>    content-addressed result cache (default under the temp
                       dir; survives restarts and is rehydrated on startup)
  --cache-max-entries <N>
                       bound the result cache; inserting past the bound
                       evicts the least-recently-used entry (counted in
                       `serve.evicted`), and an overfull directory is
                       trimmed on startup; 0 = unbounded (default 0)
  --cache-max-age-secs <N>
                       age out cache entries older than N seconds: stale
                       files die at rehydrate and a background sweep evicts
                       live entries as they expire (counted in
                       `serve.evicted_stale`); 0 = keep forever (default 0)
  --queue-depth <N>    pending-run queue; requests beyond it are answered
                       `overloaded` instead of waiting (default 32)
  --concurrency <N>    worker threads executing cache misses (default 2)
  --handlers <N>       connection-handler threads; a persistent pipelined
                       client occupies one for its connection's lifetime
                       (default: concurrency + queue-depth + 2, min 16)
  --hold-ms <N>        hold each miss N ms before executing — deterministic
                       load knob for overload testing (default 0)
  --ready-file <PATH>  write the bound address here once listening
  The daemon drains and exits on SIGTERM or a `query --shutdown`.

Query options (the shared options form the request tuple; daemon defaults
fill whatever is absent, and deadline is wall-clock only — never part of the
cache key):
  --addr <HOST:PORT>   daemon address (default 127.0.0.1:7077)
  --timeout-ms <N>     socket timeout (default 120000)
  --artifact-out <PATH>
                       write the returned artifact JSON here instead of stdout

Ramp options (shared options: --fault-profile/--intensity shape the request
mix; --seed/--retries/--deadline-ms set the self-spawned daemon's runner
defaults):
  [ID...]              experiments cycled by the request mix (default f1,
                       the cheapest — measures daemon overhead)
  --addr <HOST:PORT>   target an already-running daemon instead of spawning
                       an in-process one on a free loopback port
  --workers <N>        open-loop load worker threads, one persistent
                       pipelined connection each (default 4)
  --initial-rps <X>    first step's offered load (default 100)
  --increment-rps <X>  additive step increase (default 100)
  --max-rps <X>        give up ramping past this rate (default 5000)
  --step-ms <N>        measurement window per step (default 2000)
  --bisect-iters <N>   bisection steps between last-good and first-bad
                       (default 4; stops early once the bracket is tight)
  --slo-p99-ms <N>     SLO: p99 latency ceiling (default 50)
  --slo-max-fail <X>   SLO: max shed+error+unanswered fraction (default 0.01)
  --slo-min-achieved <X>
                       SLO: min achieved/offered throughput (default 0.9)
  --mix-seeds <N>      seeds cycled per experiment — steady-state cache-hit
                       requests after warmup; 0 = a fresh seed per request,
                       every request a miss (default 8)
  --capacity-out <PATH>
                       write the code-rev-stamped capacity report JSON here
  --history-file <PATH>
                       per-revision capacity ledger a successful ramp appends
                       one line to — duplicate code-revs are skipped, so
                       re-ramping the same build is idempotent
                       (default CAPACITY_HISTORY.jsonl)
  --trend              render the ledger as a per-revision table and exit
                       without ramping
  --timeout-ms <N>     per-connection socket timeout (default 10000)
  --cache-dir/--cache-max-entries/--queue-depth/--concurrency/--handlers/
  --hold-ms            tune the self-spawned daemon (ignored with --addr;
                       default cache dir is fresh per run so the measured
                       hit-rate is the mix's, and the handler pool is sized
                       so every ramp worker's connection gets one)

Exit codes:
  0  all experiments completed / replay matched the capture / query answered
  1  an experiment failed / replay diverged / the daemon reported an error
  2  an experiment timed out, a shard died without --allow-partial, or bad
     arguments / unreadable or unwritable files / the daemon is unreachable
  3  dispatch degraded to partial results under --allow-partial, or the
     daemon shed the query as overloaded";

fn banner(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}\n", "=".repeat(72));
}
