//! Regenerates every table and figure recorded in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin experiments            # run everything
//! cargo run --release --bin experiments -- f3 t1   # run a subset
//! ```
//!
//! Output is plain text: each experiment prints its rendered tables and
//! series (with ASCII sparklines standing in for figures).

use humnet::core::experiments as exp;

fn wanted(args: &[String], id: &str) -> bool {
    args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ran = 0;

    if wanted(&args, "f1") {
        banner("F1 — Lorenz curve of research attention (paper §1)");
        match exp::f1_attention(42) {
            Ok(r) => {
                println!("{}", r.lorenz.render());
                println!("attention gini = {:.3}\n", r.gini);
                println!("{}", r.by_class.render());
            }
            Err(e) => eprintln!("F1 failed: {e}"),
        }
        ran += 1;
    }
    if wanted(&args, "t1") {
        banner("T1 — method-regime comparison (paper §2, §5.1)");
        match exp::t1_regimes(&[1, 2, 3, 4, 5]) {
            Ok((_, table)) => println!("{}", table.render()),
            Err(e) => eprintln!("T1 failed: {e}"),
        }
        ran += 1;
    }
    if wanted(&args, "f2") {
        banner("F2 — positionality prevalence by venue (paper §4, §6.4)");
        match exp::f2_positionality(7) {
            Ok((table, series)) => {
                println!("{}", table.render());
                for s in series {
                    println!("{}", s.render());
                }
            }
            Err(e) => eprintln!("F2 failed: {e}"),
        }
        ran += 1;
    }
    if wanted(&args, "t2") {
        banner("T2 — inter-rater reliability vs codebook refinement (paper §5.2)");
        match exp::t2_irr(5, 6) {
            Ok(table) => println!("{}", table.render()),
            Err(e) => eprintln!("T2 failed: {e}"),
        }
        ran += 1;
    }
    if wanted(&args, "f3") {
        banner("F3 — Telmex: mandatory peering vs ASN splitting (paper §3, [38])");
        match exp::f3_telmex(11) {
            Ok((comply, split, table)) => {
                println!("{}", comply.render());
                println!("{}", split.render());
                println!("{}", table.render());
            }
            Err(e) => eprintln!("F3 failed: {e}"),
        }
        ran += 1;
    }
    if wanted(&args, "f4") {
        banner("F4 — IXP gravity: Brazil vs Germany (paper §3, [39])");
        match exp::f4_gravity(11) {
            Ok((foreign, local)) => {
                println!("{}", foreign.render());
                println!("{}", local.render());
            }
            Err(e) => eprintln!("F4 failed: {e}"),
        }
        ran += 1;
    }
    if wanted(&args, "t3") {
        banner("T3 — community-network sustainability (paper §4, [23])");
        match exp::t3_sustainability(&[1, 2, 3, 4, 5]) {
            Ok(table) => println!("{}", table.render()),
            Err(e) => eprintln!("T3 failed: {e}"),
        }
        ran += 1;
    }
    if wanted(&args, "f5") {
        banner("F5 — common-pool congestion management (paper §4, [28])");
        match exp::f5_congestion(1) {
            Ok(table) => println!("{}", table.render()),
            Err(e) => eprintln!("F5 failed: {e}"),
        }
        ran += 1;
    }
    if wanted(&args, "t4") {
        banner("T4 — participation-ladder audit (paper §2, §5.1)");
        match exp::t4_ladder() {
            Ok(table) => println!("{}", table.render()),
            Err(e) => eprintln!("T4 failed: {e}"),
        }
        ran += 1;
    }
    if wanted(&args, "f6") {
        banner("F6 — patchwork vs traditional ethnography (paper §3, [17])");
        match exp::f6_patchwork() {
            Ok(table) => println!("{}", table.render()),
            Err(e) => eprintln!("F6 failed: {e}"),
        }
        ran += 1;
    }
    if wanted(&args, "t5") {
        banner("T5 — venue gatekeeping of human-centered work (paper §6.3.2)");
        match exp::t5_gatekeeping(6) {
            Ok((human, systems, table)) => {
                println!("{}", human.render());
                println!("{}", systems.render());
                println!("{}", table.render());
            }
            Err(e) => eprintln!("T5 failed: {e}"),
        }
        ran += 1;
    }
    if wanted(&args, "f7") {
        banner("F7 — §5 recommendation uptake audit");
        match exp::f7_audit(3) {
            Ok(table) => println!("{}", table.render()),
            Err(e) => eprintln!("F7 failed: {e}"),
        }
        ran += 1;
    }
    if wanted(&args, "f8") {
        banner("F8 — IXP growth dynamics (paper §3, [39])");
        match exp::f8_growth(7) {
            Ok((top, local, table)) => {
                println!("{}", top.render());
                println!("{}", local.render());
                println!("{}", table.render());
            }
            Err(e) => eprintln!("F8 failed: {e}"),
        }
        ran += 1;
    }
    if wanted(&args, "f9") {
        banner("F9 — method adoption around a CFP intervention (paper §6.4)");
        match exp::f9_adoption() {
            Ok((series, table)) => {
                println!("{}", series.render());
                println!("{}", table.render());
            }
            Err(e) => eprintln!("F9 failed: {e}"),
        }
        ran += 1;
    }
    if wanted(&args, "t6") {
        banner("T6 — diary studies and technology probes (paper §6.1, [7])");
        match exp::t6_diary(5) {
            Ok(table) => println!("{}", table.render()),
            Err(e) => eprintln!("T6 failed: {e}"),
        }
        ran += 1;
    }
    if wanted(&args, "t7") {
        banner("T7 — cooperative economics by dues policy (paper §4)");
        match exp::t7_economics(&[1, 2, 3, 4, 5]) {
            Ok(table) => println!("{}", table.render()),
            Err(e) => eprintln!("T7 failed: {e}"),
        }
        ran += 1;
    }

    if ran == 0 {
        eprintln!(
            "unknown experiment id(s): {:?}\n\
             available: f1 t1 f2 t2 f3 f4 t3 f5 t4 f6 t5 f7 f8 f9 t6 t7",
            args
        );
        std::process::exit(2);
    }
}

fn banner(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}\n", "=".repeat(72));
}
