//! # humnet
//!
//! A toolkit and simulation suite for studying *the humans of networking
//! research* — a full Rust reproduction of the HotNets '25 position paper
//! "Unveiling and Engaging with the Humans of Networking Research".
//!
//! The paper argues that networking research abstracts away the people who
//! build, operate, and experience the Internet, and proposes three
//! qualitative methods — participatory action research, ethnography, and
//! positionality — as first-class research tools. Since a position paper
//! has no evaluation to re-run, this crate *operationalizes* the paper:
//! every claim becomes a simulator and every recommendation becomes a
//! checkable audit (see `DESIGN.md` for the substitution table and
//! `EXPERIMENTS.md` for measured results).
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`stats`] | `humnet-stats` | deterministic RNG, inequality/diversity indices, hypothesis tests, bootstrap |
//! | [`graph`] | `humnet-graph` | graphs, centrality, communities, generators |
//! | [`text`] | `humnet-text` | tokenization, TF-IDF, naive Bayes, Markov generation |
//! | [`corpus`] | `humnet-corpus` | synthetic publication corpus + bibliometrics |
//! | [`qual`] | `humnet-qual` | qualitative coding, inter-rater reliability, ethics guardrails |
//! | [`ixp`] | `humnet-ixp` | AS topology, Gao–Rexford routing, IXPs, regulation |
//! | [`community`] | `humnet-community` | volunteer-maintained mesh + common-pool congestion |
//! | [`agenda`] | `humnet-agenda` | research-ecosystem ABM + venue gatekeeping |
//! | [`survey`] | `humnet-survey` | Likert instruments, sampling bias, positionality detection |
//! | [`resilience`] | `humnet-resilience` | deterministic fault injection, supervised experiment runner |
//! | [`serve`] | `humnet-serve` | long-lived experiment daemon with a content-addressed result cache |
//! | [`telemetry`] | `humnet-telemetry` | metrics registry, tracing spans, structured event journal |
//! | [`core`] | `humnet-core` | PAR / ethnography / reflexivity workflows, methods auditor, experiment suite |
//!
//! ## Quickstart
//!
//! ```
//! use humnet::core::experiments;
//!
//! // Regenerate the headline experiment: concentration of research
//! // attention under a data-driven regime (figure F1).
//! let f1 = experiments::f1_attention(42).expect("simulation runs");
//! assert!(f1.gini > 0.5, "attention is heavily concentrated");
//! println!("{}", f1.by_class.render());
//! ```
//!
//! Run `cargo run --bin experiments` to regenerate every table and figure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use humnet_agenda as agenda;
pub use humnet_community as community;
pub use humnet_core as core;
pub use humnet_corpus as corpus;
pub use humnet_graph as graph;
pub use humnet_ixp as ixp;
pub use humnet_qual as qual;
pub use humnet_resilience as resilience;
pub use humnet_serve as serve;
pub use humnet_stats as stats;
pub use humnet_survey as survey;
pub use humnet_telemetry as telemetry;
pub use humnet_text as text;
